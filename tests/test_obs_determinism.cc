/**
 * @file
 * The zero-perturbation contract, pinned: running the GBT trainer and
 * the characterization campaign with observability off and on, at 1
 * and 8 threads, must produce byte-identical models, predictions and
 * latency CSVs. The report emitted by the instrumented run must
 * validate against the documented gcm-perf-report/v1 schema.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "ml/gbt.hh"
#include "obs/obs.hh"
#include "sim/campaign.hh"
#include "sim/device.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

#include "support_json.hh"

namespace
{

using namespace gcm;
using gcmtest::JsonValue;
using gcmtest::parseJson;

struct Variant
{
    bool obs_on;
    std::size_t threads;
};

const std::vector<Variant> kVariants{
    {false, 1}, {false, 8}, {true, 1}, {true, 8}};

/**
 * Run fn() under each (obs, threads) variant. Returns the per-variant
 * results plus the JSON report captured from the last instrumented
 * run. Observability is reset before each instrumented run so the
 * captured report covers exactly one execution.
 */
template <typename Fn>
std::pair<std::vector<decltype(std::declval<Fn>()())>, std::string>
sweepVariants(Fn &&fn)
{
    std::vector<decltype(fn())> out;
    std::string report;
    for (const Variant &v : kVariants) {
        setThreads(v.threads);
        obs::setEnabled(v.obs_on);
        obs::reset();
        out.push_back(fn());
        if (v.obs_on)
            report = obs::reportJson();
    }
    obs::reset();
    obs::setEnabled(false);
    setThreads(1);
    return {std::move(out), std::move(report)};
}

ml::Dataset
syntheticDataset(std::size_t rows, std::size_t features,
                 std::uint64_t seed)
{
    Rng rng(seed);
    ml::Dataset ds(features);
    std::vector<float> row(features);
    for (std::size_t i = 0; i < rows; ++i) {
        double y = 0.0;
        for (std::size_t f = 0; f < features; ++f) {
            row[f] = static_cast<float>(rng.uniform(-1, 1));
            if (f < 6)
                y += static_cast<double>(f + 1) * row[f];
        }
        ds.addRow(row, y + 0.05 * rng.normal());
    }
    return ds;
}

/** Depth-first lookup of a span path like {"campaign.run", ...}. */
const JsonValue *
findSpanPath(const JsonValue &spans,
             const std::vector<std::string> &path, std::size_t depth = 0)
{
    if (depth == path.size())
        return nullptr;
    for (const auto &s : spans.array) {
        if (s.at("name").str != path[depth])
            continue;
        if (depth + 1 == path.size())
            return &s;
        return findSpanPath(s.at("children"), path, depth + 1);
    }
    return nullptr;
}

TEST(ObsDeterminism, CampaignByteIdenticalWithObsOnAndOff)
{
    const auto fleet = sim::DeviceDatabase::standard(2020, 12);
    const sim::LatencyModel model;
    sim::CampaignConfig config;
    config.runs_per_network = 8;
    std::vector<dnn::Graph> suite;
    suite.push_back(dnn::buildZooModel("mobilenet_v1_1.0"));
    suite.push_back(
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0")));
    suite.push_back(dnn::buildZooModel("squeezenet_1.0"));
    const sim::CharacterizationCampaign campaign(fleet, model, config);

    const auto [runs, report] =
        sweepVariants([&] { return campaign.run(suite).toCsv(); });
    for (std::size_t k = 1; k < runs.size(); ++k) {
        EXPECT_EQ(runs[0], runs[k])
            << "campaign CSV differs with obs="
            << kVariants[k].obs_on << " threads="
            << kVariants[k].threads;
    }

    // The instrumented 8-thread run must describe the campaign.
    const auto r = parseJson(report);
    EXPECT_EQ(r.at("schema").str, "gcm-perf-report/v1");
    const JsonValue *device = findSpanPath(
        r.at("spans"),
        {"campaign.run", "campaign.grid", "campaign.device"});
    ASSERT_NE(device, nullptr)
        << "span tree is missing campaign.run > campaign.grid > "
           "campaign.device";
    // One device span per fleet member; the 3-network suite runs
    // inside it, so records = 3 x 12.
    EXPECT_EQ(device->at("count").number, 12.0);
    EXPECT_EQ(r.at("counters").at("campaign.devices").number, 12.0);
    EXPECT_EQ(r.at("counters").at("campaign.records").number, 36.0);
    EXPECT_TRUE(r.at("counters").has("pool.chunks"));
    EXPECT_TRUE(r.at("counters").has("pool.batches"));
    EXPECT_EQ(r.at("gauges").at("pool.threads").number, 8.0);
}

TEST(ObsDeterminism, GbtTrainByteIdenticalWithObsOnAndOff)
{
    const auto train = syntheticDataset(600, 24, 11);
    const auto test = syntheticDataset(100, 24, 12);
    ml::GbtParams params;
    params.n_estimators = 30;
    params.subsample = 0.8;

    const auto [runs, report] = sweepVariants([&] {
        ml::GradientBoostedTrees model(params);
        model.train(train);
        std::ostringstream os;
        model.serialize(os);
        return std::make_pair(os.str(), model.predict(test));
    });
    for (std::size_t k = 1; k < runs.size(); ++k) {
        EXPECT_EQ(runs[0].first, runs[k].first)
            << "serialized model differs with obs="
            << kVariants[k].obs_on << " threads="
            << kVariants[k].threads;
        ASSERT_EQ(runs[0].second.size(), runs[k].second.size());
        for (std::size_t i = 0; i < runs[0].second.size(); ++i)
            ASSERT_EQ(runs[0].second[i], runs[k].second[i])
                << "row " << i;
    }

    const auto r = parseJson(report);
    const JsonValue *round = findSpanPath(
        r.at("spans"), {"gbt.train", "gbt.round"});
    ASSERT_NE(round, nullptr)
        << "span tree is missing gbt.train > gbt.round";
    EXPECT_EQ(round->at("count").number, 30.0);
    EXPECT_EQ(r.at("counters").at("gbt.rounds").number, 30.0);
    EXPECT_TRUE(r.at("counters").has("tree.nodes"));
}

TEST(ObsDeterminism, ReportValidatesAgainstDocumentedSchema)
{
    const auto train = syntheticDataset(200, 12, 3);
    setThreads(8);
    obs::setEnabled(true);
    obs::reset();
    ml::GbtParams params;
    params.n_estimators = 5;
    ml::GradientBoostedTrees model(params);
    model.train(train);
    const std::string json = obs::reportJson();
    obs::reset();
    obs::setEnabled(false);
    setThreads(1);

    const auto r = parseJson(json);
    // Top-level: exactly the five documented sections.
    ASSERT_TRUE(r.isObject());
    EXPECT_EQ(r.object.size(), 5u);
    EXPECT_EQ(r.at("schema").str, "gcm-perf-report/v1");
    ASSERT_TRUE(r.at("counters").isObject());
    ASSERT_TRUE(r.at("gauges").isObject());
    ASSERT_TRUE(r.at("histograms").isObject());
    ASSERT_TRUE(r.at("spans").isArray());
    for (const auto &[name, value] : r.at("counters").object) {
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(value.isNumber()) << name;
    }
    for (const auto &[name, value] : r.at("gauges").object)
        EXPECT_TRUE(value.isNumber()) << name;
    for (const auto &[name, h] : r.at("histograms").object) {
        ASSERT_TRUE(h.isObject()) << name;
        ASSERT_EQ(h.at("bounds_ms").array.size(),
                  obs::kNumHistogramBuckets - 1);
        ASSERT_EQ(h.at("counts").array.size(),
                  obs::kNumHistogramBuckets);
        double total = 0.0;
        for (const auto &c : h.at("counts").array)
            total += c.number;
        EXPECT_EQ(total, h.at("count").number) << name;
        EXPECT_GE(h.at("sum_ms").number, 0.0) << name;
    }
    // Every span node carries name/count/total_ms/children.
    std::vector<const JsonValue *> stack;
    for (const auto &s : r.at("spans").array)
        stack.push_back(&s);
    while (!stack.empty()) {
        const JsonValue *s = stack.back();
        stack.pop_back();
        EXPECT_TRUE(s->at("name").isString());
        EXPECT_GE(s->at("count").number, 1.0);
        EXPECT_GE(s->at("total_ms").number, 0.0);
        ASSERT_TRUE(s->at("children").isArray());
        for (const auto &c : s->at("children").array)
            stack.push_back(&c);
    }
}

} // namespace

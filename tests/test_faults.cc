/**
 * @file
 * Fault-injection and recovery tests: deterministic chaos.
 *
 * The resilient campaign must (a) be byte-identical to the fault-free
 * path when injection is off, (b) produce bit-identical output at any
 * thread count even under heavy fault load, (c) account for every
 * planned cell, and (d) degrade gracefully end-to-end: a model
 * trained on an imputed 20%-faulted repository keeps most of its
 * clean-holdout accuracy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/chaos.hh"
#include "core/collaborative.hh"
#include "core/cross_validation.hh"
#include "core/evaluation.hh"
#include "core/experiment_context.hh"
#include "core/imputation.hh"
#include "dnn/zoo.hh"
#include "sim/campaign.hh"
#include "sim/faults.hh"
#include "testing_support.hh"
#include "util/error.hh"
#include "util/parallel.hh"

using namespace gcm;
using namespace gcm::sim;

namespace
{

std::vector<dnn::Graph>
tinySuite()
{
    return {dnn::buildZooModel("squeezenet_1.1"),
            dnn::buildZooModel("mobilenet_v3_small"),
            dnn::buildZooModel("mnasnet_a1")};
}

CampaignConfig
faultedConfig(double rate)
{
    CampaignConfig cfg;
    cfg.runs_per_network = 5;
    cfg.faults = FaultParams::uniformRate(rate);
    return cfg;
}

void
expectSameStats(const CampaignStats &a, const CampaignStats &b)
{
    EXPECT_EQ(a.sessions_attempted, b.sessions_attempted);
    EXPECT_EQ(a.sessions_ok, b.sessions_ok);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.stragglers, b.stragglers);
    EXPECT_EQ(a.corrupt_rejected, b.corrupt_rejected);
    EXPECT_EQ(a.duplicates, b.duplicates);
    EXPECT_EQ(a.dropped_cells, b.dropped_cells);
    EXPECT_EQ(a.completed_cells, b.completed_cells);
    EXPECT_EQ(a.quarantined_devices, b.quarantined_devices);
    EXPECT_EQ(a.dropout_devices, b.dropout_devices);
    EXPECT_DOUBLE_EQ(a.simulated_ms, b.simulated_ms);
}

} // namespace

TEST(FaultParams, ValidateRejectsBadProbabilities)
{
    FaultParams p;
    p.session_crash_prob = -0.1;
    EXPECT_THROW(p.validate(), GcmError);
    p = FaultParams{};
    p.corrupt_prob = 1.5;
    EXPECT_THROW(p.validate(), GcmError);
    p = FaultParams{};
    p.session_crash_prob = 0.6;
    p.straggler_prob = 0.6;
    EXPECT_THROW(p.validate(), GcmError);
    p = FaultParams{};
    p.flakiness_spread = 0.5;
    EXPECT_THROW(p.validate(), GcmError);
    p = FaultParams{};
    p.straggler_slowdown_min = 10.0;
    p.straggler_slowdown_max = 5.0;
    EXPECT_THROW(p.validate(), GcmError);
    EXPECT_NO_THROW(FaultParams::uniformRate(0.3).validate());
    EXPECT_FALSE(FaultParams{}.enabled());
    EXPECT_TRUE(FaultParams::uniformRate(0.1).enabled());
}

TEST(FaultInjector, DeterministicAndPure)
{
    const FaultParams params = FaultParams::uniformRate(0.5);
    const FaultInjector a(params, 42), b(params, 42);
    const FaultInjector c(params, 43);
    bool any_fault = false, any_seed_difference = false;
    for (std::int32_t dev = 0; dev < 8; ++dev) {
        const auto pa = a.deviceProfile(dev);
        const auto pb = b.deviceProfile(dev);
        EXPECT_DOUBLE_EQ(pa.fault_scale, pb.fault_scale);
        EXPECT_EQ(pa.drops_out, pb.drops_out);
        for (std::size_t s = 0; s < 32; ++s) {
            const auto fa = a.sessionFault(dev, s, 10.0, 50.0);
            const auto fb = b.sessionFault(dev, s, 10.0, 50.0);
            EXPECT_EQ(fa.kind, fb.kind);
            if (fa.kind != FaultKind::None)
                any_fault = true;
            const auto fc = c.sessionFault(dev, s, 10.0, 50.0);
            if (fc.kind != fa.kind)
                any_seed_difference = true;
        }
    }
    EXPECT_TRUE(any_fault);
    EXPECT_TRUE(any_seed_difference);
    // Repeated queries are pure: same answer the second time around.
    const auto f1 = a.sessionFault(3, 7, 10.0, 50.0);
    const auto f2 = a.sessionFault(3, 7, 10.0, 50.0);
    EXPECT_EQ(f1.kind, f2.kind);
    EXPECT_DOUBLE_EQ(f1.duration_ms, f2.duration_ms);
}

TEST(CampaignConfig, ValidationRaisesGcmError)
{
    const auto fleet = DeviceDatabase::standard(1, 2);
    CampaignConfig cfg;
    cfg.runs_per_network = 0;
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 GcmError);
    cfg = CampaignConfig{};
    cfg.noise.session_jitter_sigma = std::nan("");
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 GcmError);
    cfg = CampaignConfig{};
    cfg.noise.outlier_min = 3.0;
    cfg.noise.outlier_max = 2.0;
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 GcmError);
    cfg = CampaignConfig{};
    cfg.retry.max_attempts = 0;
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 GcmError);
    cfg = CampaignConfig{};
    cfg.faults.session_crash_prob = 2.0;
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 GcmError);
}

TEST(ResilientCampaign, FaultFreeMatchesLegacyRun)
{
    const auto fleet = DeviceDatabase::standard(1, 6);
    CampaignConfig cfg;
    cfg.runs_per_network = 5;
    const CharacterizationCampaign campaign(fleet, LatencyModel{}, cfg);
    const auto suite = tinySuite();
    const auto legacy = campaign.run(suite);
    const auto report = campaign.runResilient(suite);
    EXPECT_EQ(report.repo.toCsv(), legacy.toCsv());
    EXPECT_EQ(report.stats.completed_cells, report.expected_cells);
    EXPECT_EQ(report.stats.dropped_cells, 0u);
    EXPECT_EQ(report.stats.retries, 0u);
    EXPECT_TRUE(report.quarantined.empty());
    EXPECT_TRUE(report.dropouts.empty());
}

TEST(ResilientCampaign, ChaosIsThreadCountInvariant)
{
    const auto fleet = DeviceDatabase::standard(1, 12);
    const CharacterizationCampaign campaign(fleet, LatencyModel{},
                                            faultedConfig(0.25));
    const auto suite = tinySuite();
    setThreads(1);
    const auto seq = campaign.runResilient(suite);
    setThreads(8);
    const auto par = campaign.runResilient(suite);
    setThreads(0);
    EXPECT_EQ(seq.repo.toCsv(), par.repo.toCsv());
    EXPECT_EQ(seq.quarantined, par.quarantined);
    EXPECT_EQ(seq.dropouts, par.dropouts);
    expectSameStats(seq.stats, par.stats);
}

TEST(ResilientCampaign, TwentyPercentChaosAccountsForEveryCell)
{
    const auto fleet = DeviceDatabase::standard(1, 16);
    const CharacterizationCampaign campaign(fleet, LatencyModel{},
                                            faultedConfig(0.2));
    const auto suite = tinySuite();
    CampaignReport report;
    ASSERT_NO_THROW(report = campaign.runResilient(suite));

    // Faults actually happened and were recovered from.
    EXPECT_GT(report.stats.crashes + report.stats.stragglers
                  + report.stats.corrupt_rejected,
              0u);
    EXPECT_GT(report.stats.retries, 0u);
    EXPECT_GT(report.stats.simulated_ms, 0.0);

    // Accounting identity: every planned cell completed or dropped.
    EXPECT_EQ(report.expected_cells, suite.size() * fleet.size());
    EXPECT_EQ(report.stats.completed_cells + report.stats.dropped_cells,
              report.expected_cells);
    EXPECT_EQ(report.repo.size(), report.stats.completed_cells);

    // Zero invalid cells made it past the trust boundary.
    for (const auto &r : report.repo.records()) {
        EXPECT_TRUE(MeasurementRepository::validRecord(r));
        EXPECT_FALSE(report.repo.isQuarantined(r.device_id));
    }
    for (std::int32_t q : report.quarantined)
        EXPECT_TRUE(report.repo.isQuarantined(q));
}

TEST(Aggregators, RobustToOutliers)
{
    // Enough runs that the trimmed mean actually trims (size/10 per
    // end needs >= 10 samples).
    const std::vector<double> clean = {10.0, 10.2, 9.8, 10.1, 9.9,
                                       10.3, 9.7,  10.0, 9.9, 10.1,
                                       10.2};
    std::vector<double> poisoned = clean;
    poisoned.push_back(1000.0);

    const double mean = aggregateRuns(poisoned, Aggregator::Mean);
    const double median = aggregateRuns(poisoned, Aggregator::Median);
    const double trimmed =
        aggregateRuns(poisoned, Aggregator::TrimmedMean);
    const double mad = aggregateRuns(poisoned, Aggregator::MadMean);
    EXPECT_GT(mean, 90.0);
    EXPECT_NEAR(median, 10.0, 0.5);
    EXPECT_NEAR(mad, 10.0, 0.5);
    EXPECT_NEAR(trimmed, 10.0, 0.5);

    // Mean reproduces ordered-sum arithmetic exactly.
    double sum = 0.0;
    for (double v : clean)
        sum += v;
    EXPECT_DOUBLE_EQ(aggregateRuns(clean, Aggregator::Mean),
                     sum / clean.size());
    EXPECT_EQ(parseAggregator("median"), Aggregator::Median);
    EXPECT_THROW(parseAggregator("bogus"), GcmError);
}

TEST(Imputation, FillsSparseMatrixDeterministically)
{
    // Three devices with multiplicative speed factors, one hole.
    const double nan = std::nan("");
    std::vector<std::vector<double>> m = {
        {10.0, 20.0, 40.0},
        {5.0, 10.0, 20.0},
        {8.0, 16.0, nan},
        {2.0, 4.0, 8.0},
    };
    auto copy = m;
    const auto st = gcm::core::imputeLatencyMatrix(m);
    EXPECT_EQ(st.missing_cells, 1u);
    EXPECT_EQ(st.nn_imputed, 1u);
    // Device 2 runs everything 4x slower than device 0.
    EXPECT_NEAR(m[2][2], 32.0, 1.0);
    const auto st2 = gcm::core::imputeLatencyMatrix(copy);
    EXPECT_DOUBLE_EQ(copy[2][2], m[2][2]);
    EXPECT_EQ(st2.nn_imputed, 1u);

    // A fully missing network row cannot be imputed.
    std::vector<std::vector<double>> empty_row = {
        {1.0, 2.0},
        {nan, nan},
    };
    EXPECT_THROW(gcm::core::imputeLatencyMatrix(empty_row), GcmError);
}

TEST(Imputation, SignatureVectorAgainstReference)
{
    const double nan = std::nan("");
    // Reference: 4 signature networks x 3 devices (speed 1x, 2x, 4x).
    const std::vector<std::vector<double>> reference = {
        {10.0, 20.0, 40.0},
        {5.0, 10.0, 20.0},
        {8.0, 16.0, 32.0},
        {2.0, 4.0, 8.0},
    };
    // Target device is ~2x device 0, missing two entries.
    std::vector<double> sig = {20.0, nan, 16.0, nan};
    const std::size_t filled =
        gcm::core::imputeSignatureLatencies(sig, reference);
    EXPECT_EQ(filled, 2u);
    EXPECT_NEAR(sig[1], 10.0, 1.0);
    EXPECT_NEAR(sig[3], 4.0, 0.5);

    std::vector<double> all_missing = {nan, nan, nan, nan};
    EXPECT_THROW(
        gcm::core::imputeSignatureLatencies(all_missing, reference),
        GcmError);
}

TEST(ChaosSweep, GracefulDegradationOnCleanHoldout)
{
    gcm::core::ChaosSweepConfig cfg;
    cfg.experiment.num_random_networks = 6;
    cfg.experiment.num_devices = 20;
    cfg.experiment.campaign.runs_per_network = 3;
    cfg.fault_rates = {0.0, 0.2};
    cfg.gbt = gcm::gcmtest::fastGbt();
    const auto points = gcm::core::runChaosSweep(cfg);
    ASSERT_EQ(points.size(), 2u);

    // Fault-free baseline trains a decent model.
    EXPECT_EQ(points[0].missing_cells, 0u);
    EXPECT_GT(points[0].r2_clean_holdout, 0.5);

    // 20% faults: campaign completed, cells went missing, imputation
    // repaired them, and the holdout R^2 keeps most of the baseline.
    EXPECT_GT(points[1].missing_cells, 0u);
    EXPECT_EQ(points[1].imputation.missing_cells,
              points[1].missing_cells);
    EXPECT_GT(points[1].r2_clean_holdout,
              0.6 * points[0].r2_clean_holdout);
}

TEST(SparseContext, DownstreamConsumersKeepWorking)
{
    gcm::core::ExperimentConfig cfg;
    cfg.num_random_networks = 6;
    cfg.num_devices = 16;
    cfg.campaign.runs_per_network = 3;
    cfg.campaign.faults = FaultParams::uniformRate(0.2);

    // Run the faulted campaign by hand, then rebuild a context around
    // its sparse repository.
    gcm::core::ExperimentConfig clean = cfg;
    clean.campaign.faults = FaultParams{};
    const auto probe = gcm::core::ExperimentContext::build(clean);
    const CharacterizationCampaign campaign(
        probe.fleet(), probe.campaign().model(), cfg.campaign);
    const auto report = campaign.runResilient(probe.suite());
    ASSERT_GT(report.expected_cells, report.repo.size());

    gcm::core::SparseBuildInfo info;
    const auto ctx = gcm::core::ExperimentContext::buildWithRepository(
        clean, report.repo, &info);
    EXPECT_GT(info.missing_cells, 0u);
    EXPECT_EQ(info.imputation.missing_cells, info.missing_cells);
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
            const double v = ctx.latencyMs(d, n);
            EXPECT_TRUE(std::isfinite(v) && v > 0.0);
        }
    }

    // Cross-validation and the collaborative loop run on the imputed
    // context without throwing.
    const gcm::core::EvaluationHarness harness(ctx);
    gcm::core::SignatureConfig sel;
    sel.size = 5;
    const auto cv = gcm::core::crossValidateSignatureModel(
        harness, ctx.fleet().size(), 3,
        gcm::core::SignatureMethod::MutualInformation, sel,
        gcm::gcmtest::fastGbt());
    EXPECT_EQ(cv.fold_r2.size(), 3u);

    gcm::core::CollaborativeSimulation collab(ctx, 5);
    gcm::core::CollaborativeConfig ccfg;
    ccfg.signature_size = 5;
    ccfg.max_devices = 4;
    ccfg.gbt = gcm::gcmtest::fastGbt();
    const auto steps = collab.run(ccfg);
    EXPECT_EQ(steps.size(), 4u);
}

/**
 * @file
 * Differential tests for the compiled FlatEnsemble inference engine.
 *
 * The bit-identity contract (ml/flat_ensemble.hh) says the compiled
 * path is byte-for-byte the node walker at any thread count. These
 * tests enforce it differentially: seeded random ensembles x seeded
 * random feature matrices (including NaN features, which must fall
 * right exactly like the walker), compared bit-pattern-for-bit-pattern
 * at 1, 2 and 8 threads — plus a serve-path test that a hot-swapped
 * registry snapshot's compiled ensemble matches its source model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "ml/dataset.hh"
#include "ml/flat_ensemble.hh"
#include "ml/gbt.hh"
#include "ml/random_forest.hh"
#include "serve/registry.hh"
#include "testing_support.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

using namespace gcm;

namespace
{

/** Exact bit pattern of a double, for byte-identity assertions. */
std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

/** Seeded random training set with feature-correlated labels. */
ml::Dataset
randomDataset(Rng &rng, std::size_t rows, std::size_t cols)
{
    ml::Dataset data(cols);
    std::vector<float> x(cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            x[c] = static_cast<float>(rng.uniform(-10.0, 10.0));
        const double y =
            rng.uniform(0.0, 5.0) + 3.0 * x[0] - 0.5 * x[cols / 2];
        data.addRow(x, y);
    }
    return data;
}

/**
 * Seeded random query matrix (row-major, `cols` stride). Roughly 2%
 * of entries are NaN to exercise the falls-right traversal rule.
 */
std::vector<float>
randomQueries(Rng &rng, std::size_t rows, std::size_t cols)
{
    std::vector<float> q(rows * cols);
    for (float &v : q) {
        v = rng.uniform() < 0.02
                ? std::numeric_limits<float>::quiet_NaN()
                : static_cast<float>(rng.uniform(-12.0, 12.0));
    }
    return q;
}

/** Restores the worker-pool size when a test scope exits. */
struct ThreadRestore
{
    std::size_t saved = numThreads();
    ~ThreadRestore() { setThreads(saved); }
};

/**
 * Assert flat predictions are byte-identical to the node-walker
 * reference, per row and batched, at 1/2/8 threads.
 */
template <typename WalkerFn>
void
expectBitIdentical(const ml::FlatEnsemble &flat,
                   const std::vector<float> &queries, std::size_t cols,
                   WalkerFn &&walker)
{
    const std::size_t rows = queries.size() / cols;
    std::vector<double> reference(rows);
    for (std::size_t i = 0; i < rows; ++i)
        reference[i] = walker(queries.data() + i * cols);

    ThreadRestore restore;
    for (std::size_t threads : {1, 2, 8}) {
        setThreads(threads);
        std::vector<double> batched(rows);
        flat.predictBatch(queries.data(), rows, cols, batched.data());
        for (std::size_t i = 0; i < rows; ++i) {
            ASSERT_EQ(bitsOf(batched[i]), bitsOf(reference[i]))
                << "row " << i << " at " << threads << " threads";
        }
    }
    for (std::size_t i = 0; i < rows; ++i) {
        ASSERT_EQ(bitsOf(flat.predictRow(queries.data() + i * cols)),
                  bitsOf(reference[i]))
            << "predictRow row " << i;
    }
}

} // namespace

// --- differential fuzz: GBT vs compiled form ---------------------------

TEST(FlatEnsembleDiff, GbtBitIdenticalAcrossThreads)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed);
        const std::size_t cols = 4 + static_cast<std::size_t>(seed);
        const ml::Dataset train = randomDataset(rng, 200, cols);

        ml::GbtParams params;
        params.n_estimators = 30;
        params.max_depth = 4;
        params.seed = seed;
        ml::GradientBoostedTrees gbt(params);
        gbt.train(train);

        // 257 rows: not a multiple of the row block, so the tail
        // block is exercised too.
        const std::vector<float> queries =
            randomQueries(rng, 257, cols);
        const ml::FlatEnsemble flat = gbt.compile();
        EXPECT_EQ(flat.numTrees(), params.n_estimators) << seed;
        expectBitIdentical(flat, queries, cols, [&](const float *x) {
            return gbt.predictRow(x);
        });
    }
}

TEST(FlatEnsembleDiff, RandomForestBitIdenticalAcrossThreads)
{
    for (std::uint64_t seed = 11; seed <= 13; ++seed) {
        Rng rng(seed);
        const std::size_t cols = 6;
        const ml::Dataset train = randomDataset(rng, 150, cols);

        ml::RandomForestParams params;
        params.n_trees = 20;
        params.max_depth = 6;
        params.seed = seed;
        ml::RandomForest forest(params);
        forest.train(train);

        const std::vector<float> queries =
            randomQueries(rng, 130, cols);
        const ml::FlatEnsemble flat = forest.compile();
        EXPECT_EQ(flat.combine(), ml::FlatEnsemble::Combine::Mean);
        expectBitIdentical(flat, queries, cols, [&](const float *x) {
            return forest.predictRow(x);
        });
    }
}

// --- the models' own Dataset predict routes through the flat form ------

TEST(FlatEnsembleDiff, ModelPredictMatchesNodeWalker)
{
    Rng rng(99);
    const std::size_t cols = 7;
    const ml::Dataset train = randomDataset(rng, 180, cols);
    const ml::Dataset query = randomDataset(rng, 95, cols);

    ml::GbtParams gp;
    gp.n_estimators = 25;
    ml::GradientBoostedTrees gbt(gp);
    gbt.train(train);
    const std::vector<double> batch = gbt.predict(query);
    ASSERT_EQ(batch.size(), query.numRows());
    for (std::size_t i = 0; i < query.numRows(); ++i) {
        EXPECT_EQ(bitsOf(batch[i]), bitsOf(gbt.predictRow(query.row(i))))
            << i;
    }

    ml::RandomForestParams fp;
    fp.n_trees = 15;
    ml::RandomForest forest(fp);
    forest.train(train);
    const std::vector<double> fbatch = forest.predict(query);
    for (std::size_t i = 0; i < query.numRows(); ++i) {
        EXPECT_EQ(bitsOf(fbatch[i]),
                  bitsOf(forest.predictRow(query.row(i))))
            << i;
    }
}

// --- serve path: a hot-swapped snapshot's compiled ensemble matches ----

TEST(FlatEnsembleServe, HotSwappedSnapshotMatchesSourceModel)
{
    // v1: a bare GBT regressor snapshot.
    Rng rng(7);
    const std::size_t cols = 5;
    const ml::Dataset train = randomDataset(rng, 160, cols);
    ml::GbtParams gp;
    gp.n_estimators = 20;
    ml::GradientBoostedTrees gbt(gp);
    gbt.train(train);

    serve::ModelRegistry registry;
    std::stringstream gbt_stream;
    gbt.serialize(gbt_stream);
    registry.publish(serve::ModelSnapshot::fromStream(gbt_stream));

    // v2: a full cost model, hot-swapped in by the second publish.
    const auto &ctx = gcmtest::smallContext();
    std::vector<std::size_t> devices(ctx.fleet().size());
    for (std::size_t i = 0; i < devices.size(); ++i)
        devices[i] = i;
    core::SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    const auto source = core::SignatureCostModel::train(
        ctx.suite(), ctx.latencyMatrix(devices), cfg);
    std::stringstream model_stream;
    source.serialize(model_stream);
    registry.publish(serve::ModelSnapshot::fromStream(model_stream));

    const auto active = registry.active();
    ASSERT_EQ(active.version, 2u);
    ASSERT_EQ(active.snapshot->kind(), serve::SnapshotKind::CostModel);
    // Snapshot load compiled the ensemble...
    ASSERT_TRUE(active.snapshot->costModel().compiled());
    // ...and the compiled path returns byte-identical predictions to
    // the source model, which predicts through the node walker here
    // (it was never compiled).
    ASSERT_FALSE(source.compiled());
    for (std::size_t n = 0; n < ctx.suite().size(); n += 5) {
        for (std::size_t d = 0; d < devices.size(); d += 7) {
            std::vector<double> sig;
            for (std::size_t s : source.signature())
                sig.push_back(ctx.latencyMs(d, s));
            const double want =
                source.predictMs(ctx.suite()[n], sig);
            const double got = active.snapshot->costModel().predictMs(
                ctx.suite()[n], sig);
            ASSERT_EQ(bitsOf(got), bitsOf(want))
                << "network " << n << " device " << d;
        }
    }

    // The rolled-back bare snapshot predicts rows through its own
    // compiled ensemble, byte-identical to the source booster.
    registry.rollback();
    const auto bare = registry.active();
    ASSERT_EQ(bare.snapshot->kind(), serve::SnapshotKind::Gbt);
    const std::vector<float> queries = randomQueries(rng, 50, cols);
    for (std::size_t i = 0; i < 50; ++i) {
        const float *x = queries.data() + i * cols;
        ASSERT_EQ(bitsOf(bare.snapshot->predictRow(x)),
                  bitsOf(gbt.predictRow(x)))
            << i;
        ASSERT_EQ(bitsOf(bare.snapshot->flat().predictRow(x)),
                  bitsOf(gbt.predictRow(x)))
            << i;
    }
}

/**
 * @file
 * Tests of the deterministic parallel execution layer: pool
 * mechanics (chunking, ordering, stress, exception propagation) and
 * the bit-identical-at-any-thread-count contract for the refactored
 * hot paths — GBT train/predict, RandomForest, the characterization
 * campaign, cross-validation and signature selection.
 */

#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cross_validation.hh"
#include "core/evaluation.hh"
#include "core/signature.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "ml/gbt.hh"
#include "ml/random_forest.hh"
#include "sim/campaign.hh"
#include "sim/device.hh"
#include "util/error.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

#include "testing_support.hh"

namespace
{

using namespace gcm;

/** Thread counts every determinism test sweeps. */
const std::vector<std::size_t> kThreadCounts{1, 2, 8};

/** Run fn() under each thread count and return the results. */
template <typename Fn>
auto
sweepThreads(Fn &&fn)
{
    std::vector<decltype(fn())> out;
    for (std::size_t t : kThreadCounts) {
        setThreads(t);
        out.push_back(fn());
    }
    setThreads(1);
    return out;
}

ml::Dataset
syntheticDataset(std::size_t rows, std::size_t features,
                 std::uint64_t seed)
{
    Rng rng(seed);
    ml::Dataset ds(features);
    std::vector<float> row(features);
    for (std::size_t i = 0; i < rows; ++i) {
        double y = 0.0;
        for (std::size_t f = 0; f < features; ++f) {
            row[f] = static_cast<float>(rng.uniform(-1, 1));
            if (f < 6)
                y += static_cast<double>(f + 1) * row[f];
        }
        ds.addRow(row, y + 0.05 * rng.normal());
    }
    return ds;
}

std::vector<std::vector<double>>
syntheticLatencies(std::size_t nets, std::size_t devices,
                   std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> speed(devices);
    for (auto &s : speed)
        s = rng.uniform(1.0, 8.0);
    std::vector<std::vector<double>> m(nets,
                                       std::vector<double>(devices));
    for (std::size_t n = 0; n < nets; ++n) {
        const double size = rng.uniform(50.0, 800.0);
        for (std::size_t d = 0; d < devices; ++d)
            m[n][d] = size / speed[d] * rng.lognormalFactor(0.05);
    }
    return m;
}

TEST(Parallel, ForCoversRangeOnce)
{
    setThreads(4);
    for (std::size_t grain : {std::size_t{1}, std::size_t{3},
                              std::size_t{64}, std::size_t{1000}}) {
        std::vector<int> hits(257, 0);
        parallelFor(0, hits.size(), grain,
                    [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i << " grain " << grain;
    }
    setThreads(1);
}

TEST(Parallel, ForEmptyAndSingleElementRanges)
{
    setThreads(4);
    int calls = 0;
    parallelFor(5, 5, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(7, 8, 16, [&](std::size_t i) {
        ++calls;
        EXPECT_EQ(i, 7u);
    });
    EXPECT_EQ(calls, 1);
    setThreads(1);
}

TEST(Parallel, MapPreservesIndexOrder)
{
    setThreads(8);
    const auto out = parallelMap(
        100, 1, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i + 1);
    setThreads(1);
}

TEST(Parallel, MapSupportsNonDefaultConstructibleResults)
{
    struct NoDefault
    {
        explicit NoDefault(std::size_t v) : value(v) {}
        std::size_t value;
    };
    setThreads(4);
    const auto out = parallelMap(
        17, 2, [](std::size_t i) { return NoDefault(i * i); });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].value, i * i);
    setThreads(1);
}

TEST(Parallel, SetThreadsControlsNumThreads)
{
    setThreads(3);
    EXPECT_EQ(numThreads(), 3u);
    setThreads(1);
    EXPECT_EQ(numThreads(), 1u);
    setThreads(0); // back to automatic
    EXPECT_GE(numThreads(), 1u);
    setThreads(1);
}

TEST(Parallel, StressManySmallBatches)
{
    setThreads(8);
    std::atomic<std::uint64_t> total{0};
    for (int round = 0; round < 200; ++round) {
        parallelFor(0, 64, 1, [&](std::size_t i) {
            total.fetch_add(i + 1, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 200ull * (64ull * 65ull / 2ull));
    setThreads(1);
}

TEST(Parallel, NestedLoopsDoNotDeadlock)
{
    setThreads(4);
    const auto sums = parallelMap(8, 1, [](std::size_t outer) {
        std::vector<std::uint64_t> vals(100);
        parallelFor(0, vals.size(), 8, [&](std::size_t i) {
            vals[i] = outer * 1000 + i;
        });
        return std::accumulate(vals.begin(), vals.end(),
                               std::uint64_t{0});
    });
    for (std::size_t outer = 0; outer < sums.size(); ++outer)
        EXPECT_EQ(sums[outer], outer * 100000 + 4950);
    setThreads(1);
}

TEST(Parallel, ExceptionsPropagateToCaller)
{
    setThreads(4);
    EXPECT_THROW(
        parallelFor(0, 256, 1,
                    [&](std::size_t i) {
                        if (i == 93)
                            fatal("boom from task ", i);
                    }),
        GcmError);
    try {
        parallelFor(0, 256, 1, [&](std::size_t i) {
            if (i == 93)
                fatal("boom from task ", i);
        });
        FAIL() << "expected GcmError";
    } catch (const GcmError &e) {
        EXPECT_NE(std::string(e.what()).find("boom from task 93"),
                  std::string::npos);
    }
    // The pool must stay usable after a failed batch.
    std::atomic<int> ok{0};
    parallelFor(0, 64, 1, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 64);
    setThreads(1);
}

TEST(Parallel, GbtTrainAndPredictBitIdenticalAcrossThreads)
{
    const auto train = syntheticDataset(600, 24, 11);
    const auto test = syntheticDataset(100, 24, 12);
    ml::GbtParams params;
    params.n_estimators = 30;
    params.subsample = 0.8; // exercise the per-round RNG streams
    const auto runs = sweepThreads([&] {
        ml::GradientBoostedTrees model(params);
        model.train(train);
        std::ostringstream os;
        model.serialize(os);
        return std::make_pair(os.str(), model.predict(test));
    });
    for (std::size_t k = 1; k < runs.size(); ++k) {
        EXPECT_EQ(runs[0].first, runs[k].first)
            << "serialized model differs at " << kThreadCounts[k]
            << " threads";
        ASSERT_EQ(runs[0].second.size(), runs[k].second.size());
        for (std::size_t i = 0; i < runs[0].second.size(); ++i)
            ASSERT_EQ(runs[0].second[i], runs[k].second[i]) << "row " << i;
    }
}

TEST(Parallel, RandomForestBitIdenticalAcrossThreads)
{
    const auto train = syntheticDataset(400, 16, 21);
    ml::RandomForestParams params;
    params.n_trees = 24;
    params.max_depth = 6;
    const auto runs = sweepThreads([&] {
        ml::RandomForest forest(params);
        forest.train(train);
        return forest.predict(train);
    });
    for (std::size_t k = 1; k < runs.size(); ++k) {
        ASSERT_EQ(runs[0].size(), runs[k].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i)
            ASSERT_EQ(runs[0][i], runs[k][i]) << "row " << i;
    }
}

TEST(Parallel, CampaignRepositoryByteIdenticalAcrossThreads)
{
    const auto fleet = sim::DeviceDatabase::standard(2020, 12);
    const sim::LatencyModel model;
    sim::CampaignConfig config;
    config.runs_per_network = 8;
    // Mixed-precision suite: exercises the hoisted quantize path and
    // the reference-in-place path for already-int8 graphs.
    std::vector<dnn::Graph> suite;
    suite.push_back(dnn::buildZooModel("mobilenet_v1_1.0"));
    suite.push_back(
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0")));
    suite.push_back(dnn::buildZooModel("squeezenet_1.0"));
    const sim::CharacterizationCampaign campaign(fleet, model, config);
    const auto runs =
        sweepThreads([&] { return campaign.run(suite).toCsv(); });
    for (std::size_t k = 1; k < runs.size(); ++k)
        EXPECT_EQ(runs[0], runs[k])
            << "campaign CSV differs at " << kThreadCounts[k]
            << " threads";
}

TEST(Parallel, CrossValidationBitIdenticalAcrossThreads)
{
    const auto &ctx = gcmtest::smallContext();
    const core::EvaluationHarness harness(ctx);
    core::SignatureConfig config;
    config.size = 5;
    const auto runs = sweepThreads([&] {
        return core::crossValidateSignatureModel(
            harness, ctx.fleet().size(), 3,
            core::SignatureMethod::RandomSampling, config,
            gcmtest::fastGbt());
    });
    for (std::size_t k = 1; k < runs.size(); ++k) {
        ASSERT_EQ(runs[0].fold_r2.size(), runs[k].fold_r2.size());
        for (std::size_t f = 0; f < runs[0].fold_r2.size(); ++f)
            ASSERT_EQ(runs[0].fold_r2[f], runs[k].fold_r2[f])
                << "fold " << f;
        EXPECT_EQ(runs[0].mean_r2, runs[k].mean_r2);
        EXPECT_EQ(runs[0].std_r2, runs[k].std_r2);
        EXPECT_EQ(runs[0].mean_mape_pct, runs[k].mean_mape_pct);
    }
}

TEST(Parallel, SignatureSelectionBitIdenticalAcrossThreads)
{
    const auto latencies = syntheticLatencies(40, 16, 5);
    core::SignatureConfig gaussian;
    gaussian.mi_estimator = core::MiEstimatorKind::Gaussian;
    core::SignatureConfig histogram;
    histogram.mi_estimator = core::MiEstimatorKind::Histogram;
    core::SignatureConfig sccs;
    const auto runs = sweepThreads([&] {
        return std::make_tuple(
            core::selectMisSignature(latencies, 6, gaussian),
            core::selectMisSignature(latencies, 6, histogram),
            core::selectSccsSignature(latencies, 6, sccs));
    });
    for (std::size_t k = 1; k < runs.size(); ++k) {
        EXPECT_EQ(std::get<0>(runs[0]), std::get<0>(runs[k]));
        EXPECT_EQ(std::get<1>(runs[0]), std::get<1>(runs[k]));
        EXPECT_EQ(std::get<2>(runs[0]), std::get<2>(runs[k]));
    }
}

} // namespace

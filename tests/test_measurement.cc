/**
 * @file
 * Unit tests for the 30-run on-device measurement runtime.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "sim/latency_model.hh"
#include "sim/measurement.hh"
#include "util/error.hh"

using namespace gcm::sim;
using namespace gcm::dnn;
using gcm::GcmError;

namespace
{

DeviceSpec
device()
{
    DeviceSpec d;
    d.id = 3;
    d.model_name = "test";
    d.chipset_index = chipsetIndexByName("Snapdragon-660");
    d.freq_ghz = 2.2;
    d.ram_gb = 4;
    return d;
}

const Chipset &
chipset()
{
    return chipsetTable()[chipsetIndexByName("Snapdragon-660")];
}

Graph
net()
{
    static const Graph g = quantize(buildZooModel("squeezenet_1.1"));
    return g;
}

} // namespace

TEST(Measurement, ThirtyRunsByDefault)
{
    const auto d = device();
    LatencyModel m;
    DeviceRuntime rt(d, chipset(), m, 1);
    const auto res = rt.measure(net());
    EXPECT_EQ(res.runs_ms.size(), 30u);
}

TEST(Measurement, MeanMatchesRuns)
{
    const auto d = device();
    LatencyModel m;
    DeviceRuntime rt(d, chipset(), m, 2);
    const auto res = rt.measure(net(), 10);
    double sum = 0.0;
    for (double r : res.runs_ms)
        sum += r;
    EXPECT_NEAR(res.mean_ms, sum / 10.0, 1e-9);
}

TEST(Measurement, RejectsFp32Graphs)
{
    const auto d = device();
    LatencyModel m;
    DeviceRuntime rt(d, chipset(), m, 3);
    EXPECT_THROW((void)rt.measure(buildZooModel("squeezenet_1.1")),
                 GcmError);
}

TEST(Measurement, NoiseIsModest)
{
    const auto d = device();
    LatencyModel m;
    DeviceRuntime rt(d, chipset(), m, 4);
    const auto res = rt.measure(net());
    EXPECT_GT(res.stddev_ms, 0.0);
    EXPECT_LT(res.stddev_ms, 0.4 * res.mean_ms);
}

TEST(Measurement, MeanNearDeterministicBase)
{
    const auto d = device();
    LatencyModel m;
    const double base = m.graphLatencyMs(net(), d, chipset());
    DeviceRuntime rt(d, chipset(), m, 5);
    // Average many sessions: systematic inflation comes only from the
    // bounded warm-up ramp and rare outliers.
    double sum = 0.0;
    const int sessions = 50;
    for (int i = 0; i < sessions; ++i)
        sum += rt.measure(net()).mean_ms;
    const double grand_mean = sum / sessions;
    EXPECT_GT(grand_mean, base);
    EXPECT_LT(grand_mean, 1.35 * base);
}

TEST(Measurement, DeterministicForSeed)
{
    const auto d = device();
    LatencyModel m;
    DeviceRuntime a(d, chipset(), m, 7);
    DeviceRuntime b(d, chipset(), m, 7);
    EXPECT_DOUBLE_EQ(a.measure(net()).mean_ms, b.measure(net()).mean_ms);
}

TEST(Measurement, SessionsDiffer)
{
    // Two measure() calls on the same runtime draw different sessions.
    const auto d = device();
    LatencyModel m;
    DeviceRuntime rt(d, chipset(), m, 8);
    const double first = rt.measure(net()).mean_ms;
    const double second = rt.measure(net()).mean_ms;
    EXPECT_NE(first, second);
}

TEST(Measurement, WarmupRampRaisesLaterRuns)
{
    NoiseParams noise;
    noise.run_jitter_sigma = 1e-6;
    noise.outlier_probability = 0.0;
    noise.session_jitter_sigma = 1e-6;
    noise.thermal_ramp_max = 0.2;
    const auto d = device();
    LatencyModel m;
    DeviceRuntime rt(d, chipset(), m, 9, noise);
    const auto res = rt.measure(net());
    EXPECT_GT(res.runs_ms.back(), res.runs_ms.front() * 1.15);
}

TEST(Measurement, ZeroRunsAborts)
{
    const auto d = device();
    LatencyModel m;
    DeviceRuntime rt(d, chipset(), m, 10);
    EXPECT_DEATH((void)rt.measure(net(), 0), "zero runs");
}

// gcm-lint fixture: the src/fleet/ closed-loop shape. The controller
// bumps round-level counters at function top-level (legal) but must
// never instrument the innermost per-record merge sweep unguarded.
// tests/test_lint.cc lexes this content under a synthetic src/fleet/
// path (and the generic bad fixture proves path gating separately).
#include "obs/obs.hh"


unsigned
mergeRoundRecords(const double *lat, unsigned n)
{
    gcm::obs::counterAdd("fleet.rounds"); // top-level: legal
    unsigned appended = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (lat[i] <= 0.0)
            continue;
        ++appended;
        gcm::obs::counterAdd("fleet.records"); // line 18: unguarded
    }
    gcm::obs::gaugeSet("fleet.repo.size", appended); // legal
    return appended;
}

double
cohortSweepIsFine(const double *lat, unsigned devices, unsigned nets)
{
    // Outer per-device loop wraps the per-network sweep, so the
    // device-level counter amortizes and stays legal unguarded.
    double acc = 0.0;
    for (unsigned d = 0; d < devices; ++d) {
        gcm::obs::counterAdd("fleet.cohort.devices");
        for (unsigned m = 0; m < nets; ++m)
            acc += lat[d * nets + m];
    }
    return acc;
}

double
guardedCanarySweep(const double *err, unsigned n)
{
    double acc = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        acc += err[i] * err[i];
        GCM_OBS_GUARDED(gcm::obs::counterAdd("fleet.canary.evals"));
    }
    return acc;
}

// gcm-lint fixture: obs calls in innermost hot loops. The check only
// applies under src/ml/ and src/dnn/, so tests/test_lint.cc lexes
// this file's *content* under a synthetic src/ml/ path (and once
// under its real tests/ path to prove the check stays quiet there).
#include "obs/obs.hh"

double
unguardedInnerLoop(const double *xs, unsigned n)
{
    double acc = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        acc += xs[i];
        gcm::obs::counterAdd("rows");         // line 13: unguarded
        gcm::obs::histogramObserve("x", acc); // line 14: unguarded
    }
    return acc;
}

double
spanInInnerLoop(const double *xs, unsigned n)
{
    double acc = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        const gcm::obs::TraceSpan span("row"); // line 24: span per row
        acc += xs[i];
    }
    return acc;
}

double
guardedInnerLoopIsFine(const double *xs, unsigned n)
{
    double acc = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        acc += xs[i];
        GCM_OBS_GUARDED(gcm::obs::counterAdd("rows"));
        GCM_OBS_SAMPLED("rows.sampled", i, 1024);
    }
    return acc;
}

double
outerLoopIsFine(const double *xs, unsigned n)
{
    // The outer loop contains another loop, so obs calls here are
    // amortized over the inner sweep and stay legal unguarded.
    double acc = 0.0;
    for (unsigned r = 0; r < 8; ++r) {
        gcm::obs::counterAdd("rounds");
        for (unsigned i = 0; i < n; ++i)
            acc += xs[i];
    }
    return acc;
}

double
suppressedCall(const double *xs, unsigned n)
{
    double acc = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        acc += xs[i];
        // Reviewed: this loop runs at most 8 times per campaign.
        gcm::obs::counterAdd("tiny"); // gcm-lint: allow(obs-hot-loop)
    }
    return acc;
}

// gcm-lint fixture: unordered iteration in a file with no output
// markers (no stream/CSV/JSON/serialize use). The check must degrade
// to a Note here — the allowlisted false-positive case — because the
// iteration order cannot reach any serialized artifact.
#include <unordered_map>

int
countEntries(const std::unordered_map<int, int> &m)
{
    int n = 0;
    for (const auto &kv : m) { // line 11: note, not error
        (void)kv;
        ++n;
    }
    return n;
}

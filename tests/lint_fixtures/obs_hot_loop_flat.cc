// gcm-lint fixture: the compiled-ensemble walk shape of
// src/ml/flat_ensemble.cc — a guarded batch counter outside the
// loops, then a parallel block loop whose innermost `while` is the
// per-node traversal. The seeded violation puts an obs call inside
// that `while`; the surrounding `for` contains the `while`, so it is
// not innermost and its unguarded call stays legal. test_lint.cc
// lexes this content under a synthetic src/ml/ path.
#include "obs/obs.hh"

void
predictBatchShape(const float *rows, unsigned n_rows, unsigned stride,
                  const int *feature, const unsigned *left,
                  const float *threshold, double *out)
{
    GCM_OBS_GUARDED(gcm::obs::counterAdd("flat.rows", n_rows));
    const auto walkBlock = [&](unsigned lo, unsigned hi) {
        for (unsigned i = lo; i < hi; ++i) {
            const float *x = rows + i * stride;
            unsigned idx = 0;
            int f = feature[idx];
            while (f >= 0) {
                gcm::obs::counterAdd("flat.steps"); // line 22: innermost
                idx = left[idx]
                    + static_cast<unsigned>(!(x[f] <= threshold[idx]));
                f = feature[idx];
            }
            // Legal: this loop contains the `while` above, so per-row
            // bookkeeping here is amortized over the walk.
            gcm::obs::counterAdd("flat.rows.walked");
            out[i] = idx;
        }
    };
    walkBlock(0, n_rows);
}

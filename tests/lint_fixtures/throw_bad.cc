// gcm-lint fixture: error-path discipline. Outside tests/, only
// GcmError (and *Error subclasses) may cross the error boundary.
// Never compiled; lexed by tests/test_lint.cc which asserts lines.
#include <stdexcept>

#include "util/error.hh"

void
wrongThrows(int v)
{
    if (v == 1)
        throw std::runtime_error("boom"); // line 12: std:: exception
    if (v == 2)
        throw 42;                         // line 14: raw value
    if (v == 3)
        throw "text";                     // line 16: raw string
}

struct ParseError : gcm::GcmError
{
    using gcm::GcmError::GcmError;
};

void
rightThrows(int v)
{
    if (v == 1)
        throw gcm::GcmError("bad config");    // fine
    if (v == 2)
        throw ParseError("bad line");         // fine: *Error subclass
    if (v == 3)
        gcm::fatal("bad value ", v);          // fine: raises GcmError
    try {
        throw gcm::GcmError("inner");
    } catch (const gcm::GcmError &) {
        throw; // fine: bare rethrow
    }
}

void
suppressedThrow()
{
    // Deliberate escape hatch, reviewed in place:
    throw std::bad_alloc(); // gcm-lint: allow(throw-discipline)
}

// gcm-lint fixture: raw std::thread spawns. All parallelism goes
// through src/util/parallel (or the serving front end's worker pool);
// ad-hoc thread spawns elsewhere dodge the GCM_THREADS contract and
// the capture hygiene the parallel-capture check enforces. Never
// compiled; tests/test_lint.cc lexes this content under a fake src/
// path (the check exempts tests/) and asserts the line numbers.
#include <thread>
#include <vector>

void
spawnDirect()
{
    std::thread worker([] { /* work */ }); // line 13: raw spawn
    worker.join();
}

void
spawnDeferred()
{
    std::thread t;                // line 20: raw declaration
    t = std::thread([] {});       // line 21: raw assignment
    t.join();
}

unsigned
queryIsFine()
{
    // Static queries don't spawn anything.
    return std::thread::hardware_concurrency();
}

void
reviewedAndAllowed()
{
    // Deliberate: one-shot detached helper, reviewed.
    std::thread([] {}).detach(); // gcm-lint: allow(parallel-capture)
}

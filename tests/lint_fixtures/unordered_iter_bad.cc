// gcm-lint fixture: unordered-container iteration feeding output.
// The <fstream> include marks this file as output-writing, so the
// range-fors below are hazards. Never compiled; lexed by
// tests/test_lint.cc which asserts the line numbers.
#include <fstream>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

void
writeStats(const std::unordered_map<int, double> &by_id,
           const std::unordered_set<int> &seen)
{
    std::ofstream os("stats.csv");
    double total = 0.0;
    for (const auto &[id, v] : by_id) // line 17: order reaches output
        os << id << "," << v << "\n";
    for (int id : seen)               // line 19: set iteration hazard
        total += static_cast<double>(id);
    os << total << "\n";
}

void
orderedIsFine(const std::map<int, double> &sorted,
              const std::vector<double> &vec)
{
    std::ofstream os("ok.csv");
    for (const auto &[id, v] : sorted) // std::map: deterministic
        os << id << "," << v << "\n";
    for (double v : vec)               // vector: deterministic
        os << v << "\n";
    // Classic for over an unordered map via iterators is also not a
    // *range*-for; the check leaves it to the reviewer.
    std::unordered_map<int, int> m;
    for (std::size_t i = 0; i < m.size(); ++i)
        os << i;
}

void
reviewedAndAllowed(const std::unordered_map<int, double> &cache)
{
    std::ofstream os("counts.txt");
    std::size_t n = 0;
    // Count-only fold: order cannot reach the output value.
    for (const auto &kv : cache) { // gcm-lint: allow(unordered-iter)
        (void)kv;
        ++n;
    }
    os << n << "\n";
}

// gcm-lint fixture: header with no include guard and a
// using-namespace directive. Never compiled.
#include <string>

using namespace std; // line 5: leaks into every includer

inline string
greet()
{
    return "hello";
}

// gcm-lint fixture: parallel-capture hygiene. Lambdas handed to
// parallelFor/parallelMap may only write state owned by their index;
// locks are banned outright. Never compiled; lexed by
// tests/test_lint.cc which asserts the line numbers.
#include <mutex>
#include <vector>

#include "util/parallel.hh"

void
racyAccumulation(std::vector<double> &out)
{
    double sum = 0.0;
    std::vector<int> order;
    gcm::parallelFor(0, out.size(), 64, [&](std::size_t i) {
        out[i] = static_cast<double>(i); // fine: indexed by i
        sum += out[i];                   // line 17: cross-task write
        order.push_back(static_cast<int>(i)); // line 18: ordering race
    });
}

void
lockedBody(std::vector<double> &out, std::mutex &mu)
{
    gcm::parallelFor(0, out.size(), 64, [&](std::size_t i) {
        const std::lock_guard<std::mutex> hold(mu); // line 26: lock
        out[i] = 1.0;
    });
}

void
taskOwnedWritesAreFine(std::vector<double> &out,
                       const std::vector<std::vector<double>> &rows)
{
    gcm::parallelFor(0, out.size(), 64, [&](std::size_t i) {
        double acc = 0.0;            // body-local accumulator
        for (double v : rows[i])
            acc += v;                // fine: local
        out[i] = acc;                // fine: slot owned by i
    });
    // Mirrored writes where one subscript is the loop index are
    // task-owned by construction (signature.cc's MI matrix).
    std::vector<std::vector<double>> mi(4,
                                        std::vector<double>(4, 0.0));
    gcm::parallelFor(0, 4, 1, [&](std::size_t i) {
        for (std::size_t j = i + 1; j < 4; ++j) {
            mi[i][j] = 1.0; // fine
            mi[j][i] = 1.0; // fine: second subscript is i
        }
    });
}

void
byValueCaptureIsFine(std::vector<double> &out)
{
    double scale = 2.0;
    gcm::parallelFor(0, out.size(), 64, [&, scale](std::size_t i) {
        out[i] = scale * static_cast<double>(i);
    });
}

void
reviewedAndAllowed(std::vector<double> &out, double &checksum)
{
    gcm::parallelFor(0, out.size(), 64, [&](std::size_t i) {
        out[i] = 1.0;
        // Deliberate: single-threaded smoke path only.
        checksum += 1.0; // gcm-lint: allow(parallel-capture)
    });
}

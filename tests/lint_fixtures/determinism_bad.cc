// gcm-lint fixture: every seeded violation of the determinism check.
// This file is never compiled; it only exists to be lexed by
// tests/test_lint.cc. Line numbers are asserted there — append new
// cases at the bottom.
#include <cstdlib>
#include <ctime>
#include <random>

void
ambientRandomness()
{
    std::random_device rd;                       // line 12: entropy
    std::mt19937 gen(12345);                     // line 13: std engine
    std::mt19937_64 gen64(12345);                // line 14: std engine
    srand(42);                                   // line 15: global seed
    int a = rand();                              // line 16: global draw
    long t = time(nullptr);                      // line 17: wall clock
    auto now = std::chrono::system_clock::now(); // line 18: wall clock
    (void)rd;
    (void)gen;
    (void)gen64;
    (void)a;
    (void)t;
    (void)now;
}

void
falsePositives()
{
    // Identifiers merely *containing* banned names are fine.
    int my_rand = 0;
    int timeout = my_rand;
    struct Clock { long time() { return 0; } } clk;
    long member_call = clk.time(); // member .time() is not ::time()
    (void)timeout;
    (void)member_call;
    // Banned names inside comments (std::rand, random_device) and
    // strings are invisible to the lexer:
    const char *msg = "uses std::rand and time() and mt19937";
    (void)msg;
}

void
suppressedViolation()
{
    std::mt19937 legacy(7); // gcm-lint: allow(determinism)
    (void)legacy;
}

// gcm-lint fixture: well-formed header — classic include guard,
// qualified names only. Must produce zero findings.
#ifndef GCM_TESTS_LINT_FIXTURES_HEADER_OK_HH
#define GCM_TESTS_LINT_FIXTURES_HEADER_OK_HH

#include <string>

namespace gcm_fixture
{

// A using-*declaration* (not directive) is fine in a header.
using std::string;

inline string
greet()
{
    return "hello";
}

} // namespace gcm_fixture

#endif // GCM_TESTS_LINT_FIXTURES_HEADER_OK_HH

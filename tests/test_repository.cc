/**
 * @file
 * Unit tests for the central measurement repository.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/repository.hh"
#include "util/error.hh"

using namespace gcm::sim;
using gcm::GcmError;

namespace
{

MeasurementRecord
rec(std::int32_t dev, const std::string &net, double ms)
{
    MeasurementRecord r;
    r.device_id = dev;
    r.device_name = "dev" + std::to_string(dev);
    r.network = net;
    r.mean_ms = ms;
    r.stddev_ms = 0.5;
    r.runs = 30;
    return r;
}

} // namespace

TEST(Repository, AddAndLookup)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(1, "a", 20.0));
    EXPECT_TRUE(repo.has(0, "a"));
    EXPECT_FALSE(repo.has(0, "b"));
    EXPECT_DOUBLE_EQ(repo.latencyMs(1, "a"), 20.0);
    EXPECT_EQ(repo.size(), 2u);
}

TEST(Repository, MissingLookupThrows)
{
    MeasurementRepository repo;
    EXPECT_THROW((void)repo.latencyMs(0, "x"), GcmError);
}

TEST(Repository, OverwriteReplaces)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(0, "a", 12.0));
    EXPECT_EQ(repo.size(), 1u);
    EXPECT_DOUBLE_EQ(repo.latencyMs(0, "a"), 12.0);
}

TEST(Repository, LatencyMatrixLayout)
{
    MeasurementRepository repo;
    for (int d = 0; d < 2; ++d) {
        repo.add(rec(d, "a", 10.0 + d));
        repo.add(rec(d, "b", 20.0 + d));
    }
    const auto m = repo.latencyMatrix({0, 1}, {"a", "b"});
    ASSERT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m[0][1], 11.0);
    EXPECT_DOUBLE_EQ(m[1][0], 20.0);
}

TEST(Repository, LatencyMatrixMissingEntryThrows)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    EXPECT_THROW((void)repo.latencyMatrix({0}, {"a", "b"}), GcmError);
}

TEST(Repository, CsvRoundtrip)
{
    MeasurementRepository repo;
    repo.add(rec(0, "net,with,commas", 12.5));
    repo.add(rec(3, "plain", 42.0));
    const auto back = MeasurementRepository::fromCsv(repo.toCsv());
    EXPECT_EQ(back.size(), 2u);
    EXPECT_DOUBLE_EQ(back.latencyMs(0, "net,with,commas"), 12.5);
    EXPECT_DOUBLE_EQ(back.latencyMs(3, "plain"), 42.0);
    EXPECT_EQ(back.records()[1].runs, 30);
}

TEST(Repository, AddRejectsInvalidRecords)
{
    MeasurementRepository repo;
    EXPECT_THROW(repo.add(rec(0, "a", std::nan(""))), GcmError);
    EXPECT_THROW(repo.add(rec(0, "a", -3.0)), GcmError);
    EXPECT_THROW(repo.add(rec(0, "a", 0.0)), GcmError);
    EXPECT_THROW(
        repo.add(rec(0, "a", MeasurementRepository::kMaxPlausibleMs * 2)),
        GcmError);
    auto bad_std = rec(0, "a", 10.0);
    bad_std.stddev_ms = -1.0;
    EXPECT_THROW(repo.add(bad_std), GcmError);
    auto bad_runs = rec(0, "a", 10.0);
    bad_runs.runs = 0;
    EXPECT_THROW(repo.add(bad_runs), GcmError);
    EXPECT_EQ(repo.size(), 0u);
}

TEST(Repository, QuarantineBlocksUploads)
{
    MeasurementRepository repo;
    repo.add(rec(1, "a", 10.0));
    repo.quarantine(2);
    EXPECT_TRUE(repo.isQuarantined(2));
    EXPECT_FALSE(repo.isQuarantined(1));
    EXPECT_THROW(repo.add(rec(2, "a", 10.0)), GcmError);
    EXPECT_EQ(repo.quarantined().size(), 1u);
    EXPECT_EQ(repo.size(), 1u);
}

TEST(Repository, SparseCsvRoundtripPreservesMissingCells)
{
    // 2 devices x 3 networks with two holes; full double precision.
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0 / 3.0));
    repo.add(rec(0, "c", 7.123456789012345));
    repo.add(rec(1, "b", 20.0));
    repo.quarantine(9);
    const auto back = MeasurementRepository::fromCsv(repo.toCsv());
    EXPECT_EQ(back.size(), 3u);
    EXPECT_FALSE(back.has(0, "b"));
    EXPECT_FALSE(back.has(1, "a"));
    EXPECT_FALSE(back.has(1, "c"));
    EXPECT_DOUBLE_EQ(back.latencyMs(0, "a"), 10.0 / 3.0);
    EXPECT_DOUBLE_EQ(back.latencyMs(0, "c"), 7.123456789012345);
    EXPECT_EQ(back.missingCells({0, 1}, {"a", "b", "c"}), 3u);
}

TEST(Repository, FromCsvRejectsCorruptRows)
{
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,nan,0.5,30\n"),
        GcmError);
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,-2.0,0.5,30\n"),
        GcmError);
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,banana,0.5,30\n"),
        GcmError);
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,10.0,0.5,zero\n"),
        GcmError);
}

TEST(Repository, SparseLatencyMatrixMarksMissingAsNaN)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(1, "a", 12.0));
    repo.add(rec(1, "b", 22.0));
    const auto m = repo.sparseLatencyMatrix({0, 1}, {"a", "b"});
    ASSERT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m[0][0], 10.0);
    EXPECT_DOUBLE_EQ(m[0][1], 12.0);
    EXPECT_TRUE(std::isnan(m[1][0]));
    EXPECT_DOUBLE_EQ(m[1][1], 22.0);
    EXPECT_EQ(repo.missingCells({0, 1}, {"a", "b"}), 1u);
}

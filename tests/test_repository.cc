/**
 * @file
 * Unit tests for the central measurement repository.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/repository.hh"
#include "util/error.hh"

using namespace gcm::sim;
using gcm::GcmError;

namespace
{

MeasurementRecord
rec(std::int32_t dev, const std::string &net, double ms)
{
    MeasurementRecord r;
    r.device_id = dev;
    r.device_name = "dev" + std::to_string(dev);
    r.network = net;
    r.mean_ms = ms;
    r.stddev_ms = 0.5;
    r.runs = 30;
    return r;
}

} // namespace

TEST(Repository, AddAndLookup)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(1, "a", 20.0));
    EXPECT_TRUE(repo.has(0, "a"));
    EXPECT_FALSE(repo.has(0, "b"));
    EXPECT_DOUBLE_EQ(repo.latencyMs(1, "a"), 20.0);
    EXPECT_EQ(repo.size(), 2u);
}

TEST(Repository, MissingLookupThrows)
{
    MeasurementRepository repo;
    EXPECT_THROW((void)repo.latencyMs(0, "x"), GcmError);
}

TEST(Repository, OverwriteReplaces)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(0, "a", 12.0));
    EXPECT_EQ(repo.size(), 1u);
    EXPECT_DOUBLE_EQ(repo.latencyMs(0, "a"), 12.0);
}

TEST(Repository, LatencyMatrixLayout)
{
    MeasurementRepository repo;
    for (int d = 0; d < 2; ++d) {
        repo.add(rec(d, "a", 10.0 + d));
        repo.add(rec(d, "b", 20.0 + d));
    }
    const auto m = repo.latencyMatrix({0, 1}, {"a", "b"});
    ASSERT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m[0][1], 11.0);
    EXPECT_DOUBLE_EQ(m[1][0], 20.0);
}

TEST(Repository, LatencyMatrixMissingEntryThrows)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    EXPECT_THROW((void)repo.latencyMatrix({0}, {"a", "b"}), GcmError);
}

TEST(Repository, CsvRoundtrip)
{
    MeasurementRepository repo;
    repo.add(rec(0, "net,with,commas", 12.5));
    repo.add(rec(3, "plain", 42.0));
    const auto back = MeasurementRepository::fromCsv(repo.toCsv());
    EXPECT_EQ(back.size(), 2u);
    EXPECT_DOUBLE_EQ(back.latencyMs(0, "net,with,commas"), 12.5);
    EXPECT_DOUBLE_EQ(back.latencyMs(3, "plain"), 42.0);
    EXPECT_EQ(back.records()[1].runs, 30);
}

TEST(Repository, AddRejectsInvalidRecords)
{
    MeasurementRepository repo;
    EXPECT_THROW(repo.add(rec(0, "a", std::nan(""))), GcmError);
    EXPECT_THROW(repo.add(rec(0, "a", -3.0)), GcmError);
    EXPECT_THROW(repo.add(rec(0, "a", 0.0)), GcmError);
    EXPECT_THROW(
        repo.add(rec(0, "a", MeasurementRepository::kMaxPlausibleMs * 2)),
        GcmError);
    auto bad_std = rec(0, "a", 10.0);
    bad_std.stddev_ms = -1.0;
    EXPECT_THROW(repo.add(bad_std), GcmError);
    auto bad_runs = rec(0, "a", 10.0);
    bad_runs.runs = 0;
    EXPECT_THROW(repo.add(bad_runs), GcmError);
    EXPECT_EQ(repo.size(), 0u);
}

TEST(Repository, QuarantineBlocksUploads)
{
    MeasurementRepository repo;
    repo.add(rec(1, "a", 10.0));
    repo.quarantine(2);
    EXPECT_TRUE(repo.isQuarantined(2));
    EXPECT_FALSE(repo.isQuarantined(1));
    EXPECT_THROW(repo.add(rec(2, "a", 10.0)), GcmError);
    EXPECT_EQ(repo.quarantined().size(), 1u);
    EXPECT_EQ(repo.size(), 1u);
}

TEST(Repository, SparseCsvRoundtripPreservesMissingCells)
{
    // 2 devices x 3 networks with two holes; full double precision.
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0 / 3.0));
    repo.add(rec(0, "c", 7.123456789012345));
    repo.add(rec(1, "b", 20.0));
    repo.quarantine(9);
    const auto back = MeasurementRepository::fromCsv(repo.toCsv());
    EXPECT_EQ(back.size(), 3u);
    EXPECT_FALSE(back.has(0, "b"));
    EXPECT_FALSE(back.has(1, "a"));
    EXPECT_FALSE(back.has(1, "c"));
    EXPECT_DOUBLE_EQ(back.latencyMs(0, "a"), 10.0 / 3.0);
    EXPECT_DOUBLE_EQ(back.latencyMs(0, "c"), 7.123456789012345);
    EXPECT_EQ(back.missingCells({0, 1}, {"a", "b", "c"}), 3u);
}

TEST(Repository, FromCsvRejectsCorruptRows)
{
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,nan,0.5,30\n"),
        GcmError);
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,-2.0,0.5,30\n"),
        GcmError);
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,banana,0.5,30\n"),
        GcmError);
    EXPECT_THROW(
        MeasurementRepository::fromCsv("0,dev0,net,10.0,0.5,zero\n"),
        GcmError);
}

TEST(Repository, SparseLatencyMatrixMarksMissingAsNaN)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(1, "a", 12.0));
    repo.add(rec(1, "b", 22.0));
    const auto m = repo.sparseLatencyMatrix({0, 1}, {"a", "b"});
    ASSERT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m[0][0], 10.0);
    EXPECT_DOUBLE_EQ(m[0][1], 12.0);
    EXPECT_TRUE(std::isnan(m[1][0]));
    EXPECT_DOUBLE_EQ(m[1][1], 22.0);
    EXPECT_EQ(repo.missingCells({0, 1}, {"a", "b"}), 1u);
}

// --- Streaming-append coverage: the fleet closed loop (DESIGN.md
// §15) appends campaign rounds into one long-lived repository and
// snapshots it through toCsv between rounds. These tests pin the
// contract that makes that safe: interleaving appends with CSV
// round-trips is invisible (bit-exact values, byte-exact CSV) and
// quarantine rejection accounting stays exact throughout.

namespace
{

/** A latency that does not round-trip through short decimals. */
double
gnarly(int i)
{
    return (10.0 + static_cast<double>(i)) / 3.0
        + 1.0 / (static_cast<double>(i) + 7.0);
}

} // namespace

TEST(Repository, InterleavedAppendCsvRoundTripIsBitExact)
{
    MeasurementRepository live; // appended continuously
    // `restored` is rebuilt from CSV between every round.
    MeasurementRepository restored;

    for (int round = 0; round < 4; ++round) {
        for (int d = 0; d < 3; ++d) {
            auto r = rec(d, "net" + std::to_string(round),
                         gnarly(3 * round + d));
            r.stddev_ms = gnarly(d) / 100.0;
            live.add(r);
            restored.add(r);
        }
        // Snapshot + restore mid-stream; later rounds append into
        // the round-tripped repository.
        restored = MeasurementRepository::fromCsv(restored.toCsv());
    }

    EXPECT_EQ(live.size(), restored.size());
    EXPECT_EQ(live.toCsv(), restored.toCsv());
    for (int round = 0; round < 4; ++round) {
        const std::string net = "net" + std::to_string(round);
        for (int d = 0; d < 3; ++d) {
            // Bit-exact, not just approximately equal: the %.17g
            // serialization must reproduce the stored double.
            EXPECT_EQ(live.latencyMs(d, net),
                      restored.latencyMs(d, net));
        }
    }
}

TEST(Repository, StreamingQuarantineAccountingStaysExact)
{
    MeasurementRepository repo;
    std::size_t appended = 0;
    std::size_t rejected = 0;

    for (int round = 0; round < 3; ++round) {
        if (round == 1)
            repo.quarantine(1);
        for (int d = 0; d < 3; ++d) {
            const auto r =
                rec(d, "n" + std::to_string(round), gnarly(d));
            if (repo.isQuarantined(r.device_id)) {
                EXPECT_THROW(repo.add(r), GcmError);
                ++rejected;
                continue;
            }
            repo.add(r);
            ++appended;
        }
    }
    // Rounds 1 and 2 each reject device 1's upload.
    EXPECT_EQ(rejected, 2u);
    EXPECT_EQ(repo.size(), appended);
    EXPECT_EQ(repo.size(), 7u);
    EXPECT_EQ(repo.quarantined().size(), 1u);

    // The CSV snapshot persists records, not runtime quarantine
    // state: a restored repository accepts the barred device again
    // until the stream re-applies its quarantine list.
    MeasurementRepository restored =
        MeasurementRepository::fromCsv(repo.toCsv());
    EXPECT_EQ(restored.size(), repo.size());
    EXPECT_TRUE(restored.quarantined().empty());
    EXPECT_NO_THROW(restored.add(rec(1, "late", 5.0)));
    restored.quarantine(1);
    EXPECT_THROW(restored.add(rec(1, "later", 5.0)), GcmError);
    EXPECT_EQ(restored.quarantined().count(1), 1u);
}

/**
 * @file
 * Unit tests for the central measurement repository.
 */

#include <gtest/gtest.h>

#include "sim/repository.hh"
#include "util/error.hh"

using namespace gcm::sim;
using gcm::GcmError;

namespace
{

MeasurementRecord
rec(std::int32_t dev, const std::string &net, double ms)
{
    MeasurementRecord r;
    r.device_id = dev;
    r.device_name = "dev" + std::to_string(dev);
    r.network = net;
    r.mean_ms = ms;
    r.stddev_ms = 0.5;
    r.runs = 30;
    return r;
}

} // namespace

TEST(Repository, AddAndLookup)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(1, "a", 20.0));
    EXPECT_TRUE(repo.has(0, "a"));
    EXPECT_FALSE(repo.has(0, "b"));
    EXPECT_DOUBLE_EQ(repo.latencyMs(1, "a"), 20.0);
    EXPECT_EQ(repo.size(), 2u);
}

TEST(Repository, MissingLookupThrows)
{
    MeasurementRepository repo;
    EXPECT_THROW((void)repo.latencyMs(0, "x"), GcmError);
}

TEST(Repository, OverwriteReplaces)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    repo.add(rec(0, "a", 12.0));
    EXPECT_EQ(repo.size(), 1u);
    EXPECT_DOUBLE_EQ(repo.latencyMs(0, "a"), 12.0);
}

TEST(Repository, LatencyMatrixLayout)
{
    MeasurementRepository repo;
    for (int d = 0; d < 2; ++d) {
        repo.add(rec(d, "a", 10.0 + d));
        repo.add(rec(d, "b", 20.0 + d));
    }
    const auto m = repo.latencyMatrix({0, 1}, {"a", "b"});
    ASSERT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m[0][1], 11.0);
    EXPECT_DOUBLE_EQ(m[1][0], 20.0);
}

TEST(Repository, LatencyMatrixMissingEntryThrows)
{
    MeasurementRepository repo;
    repo.add(rec(0, "a", 10.0));
    EXPECT_THROW((void)repo.latencyMatrix({0}, {"a", "b"}), GcmError);
}

TEST(Repository, CsvRoundtrip)
{
    MeasurementRepository repo;
    repo.add(rec(0, "net,with,commas", 12.5));
    repo.add(rec(3, "plain", 42.0));
    const auto back = MeasurementRepository::fromCsv(repo.toCsv());
    EXPECT_EQ(back.size(), 2u);
    EXPECT_DOUBLE_EQ(back.latencyMs(0, "net,with,commas"), 12.5);
    EXPECT_DOUBLE_EQ(back.latencyMs(3, "plain"), 42.0);
    EXPECT_EQ(back.records()[1].runs, 30);
}

/**
 * @file
 * Integration tests across modules: the full pipeline on a reduced
 * dataset must reproduce the paper's qualitative results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <set>

#include "core/collaborative.hh"
#include "core/evaluation.hh"
#include "dnn/analysis.hh"
#include "stats/kmeans.hh"
#include "testing_support.hh"

using namespace gcm;
using namespace gcm::core;

TEST(Integration, ContextHasFullCartesianProduct)
{
    const auto &ctx = gcmtest::smallContext();
    EXPECT_EQ(ctx.numNetworks(), 30u);
    EXPECT_EQ(ctx.fleet().size(), 24u);
    EXPECT_EQ(ctx.repo().size(), 30u * 24u);
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        for (std::size_t n = 0; n < ctx.numNetworks(); ++n)
            EXPECT_GT(ctx.latencyMs(d, n), 0.0);
    }
}

TEST(Integration, ContextIsDeterministic)
{
    core::ExperimentConfig cfg;
    cfg.num_random_networks = 3;
    cfg.num_devices = 6;
    cfg.campaign.runs_per_network = 3;
    const auto a = core::ExperimentContext::build(cfg);
    const auto b = core::ExperimentContext::build(cfg);
    for (std::size_t d = 0; d < a.fleet().size(); ++d) {
        for (std::size_t n = 0; n < a.numNetworks(); ++n)
            EXPECT_DOUBLE_EQ(a.latencyMs(d, n), b.latencyMs(d, n));
    }
}

TEST(Integration, NetworkIndexLookup)
{
    const auto &ctx = gcmtest::smallContext();
    EXPECT_EQ(ctx.networkIndex("mobilenet_v2_1.0"), 3u);
    EXPECT_THROW((void)ctx.networkIndex("nope"), GcmError);
}

TEST(Integration, DeviceVectorsMatchLatencyMatrix)
{
    const auto &ctx = gcmtest::smallContext();
    const auto dev_vec = ctx.deviceVectors();
    ASSERT_EQ(dev_vec.size(), ctx.fleet().size());
    EXPECT_DOUBLE_EQ(dev_vec[5][2], ctx.latencyMs(5, 2));
}

TEST(Integration, DeviceClustersSeparateBySpeed)
{
    // The Fig. 4 pipeline: k-means on device latency vectors produces
    // clusters whose mean latencies are clearly ordered.
    const auto &ctx = gcmtest::smallContext();
    const auto vectors = ctx.deviceVectors();
    stats::KMeansConfig cfg;
    cfg.k = 3;
    const auto km = stats::kMeans(vectors, cfg);
    std::vector<double> mean(3, 0.0);
    std::vector<std::size_t> count(3, 0);
    for (std::size_t d = 0; d < vectors.size(); ++d) {
        double m = 0.0;
        for (double v : vectors[d])
            m += v;
        mean[km.assignments[d]] += m / vectors[d].size();
        ++count[km.assignments[d]];
    }
    std::vector<double> centers;
    for (int c = 0; c < 3; ++c) {
        if (count[c] > 0)
            centers.push_back(mean[c] / count[c]);
    }
    std::sort(centers.begin(), centers.end());
    ASSERT_GE(centers.size(), 2u);
    EXPECT_GT(centers.back(), 1.5 * centers.front());
}

TEST(Integration, SuiteCoversWideFlopsRange)
{
    const auto &ctx = gcmtest::smallContext();
    double lo = 1e18, hi = 0.0;
    for (const auto &g : ctx.fp32Suite()) {
        lo = std::min(lo, dnn::megaMacs(g));
        hi = std::max(hi, dnn::megaMacs(g));
    }
    EXPECT_LT(lo, 120.0);
    EXPECT_GT(hi, 500.0);
}

TEST(Integration, EndToEndPaperShapeHolds)
{
    // Static specs fail where signature latencies succeed — the
    // paper's Fig. 8 vs Fig. 9 contrast, end to end on small data.
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    const auto split = splitDevices(ctx.fleet().size(), 0.3, 5);
    const auto stat = h.evalStaticFeatureModel(split, gcmtest::fastGbt());
    double best_sig = -1.0;
    for (auto m : {SignatureMethod::RandomSampling,
                   SignatureMethod::MutualInformation,
                   SignatureMethod::SpearmanCorrelation}) {
        SignatureConfig cfg;
        cfg.size = 8;
        const auto ev =
            h.evalSignatureModel(split, m, cfg, gcmtest::fastGbt());
        best_sig = std::max(best_sig, ev.r2);
    }
    EXPECT_GT(best_sig, 0.75);
    EXPECT_GT(best_sig, stat.r2);
}

TEST(Integration, LargerSignatureDoesNotHurtMuch)
{
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    const auto split = splitDevices(ctx.fleet().size(), 0.3, 17);
    const auto train_lat = ctx.latencyMatrix(split.train);
    SignatureConfig cfg;
    const auto sig12 = selectMisSignature(train_lat, 12, cfg);
    const std::vector<std::size_t> sig4(sig12.begin(), sig12.begin() + 4);
    const auto e4 = h.evalWithSignature(split, sig4, gcmtest::fastGbt());
    const auto e12 =
        h.evalWithSignature(split, sig12, gcmtest::fastGbt());
    EXPECT_GT(e12.r2, e4.r2 - 0.1);
}

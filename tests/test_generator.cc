/**
 * @file
 * Unit tests for the parameterized random DNN generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "dnn/analysis.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "util/error.hh"

using namespace gcm::dnn;
using gcm::GcmError;

TEST(RoundChannels, MultiplesOfEight)
{
    EXPECT_EQ(roundChannels(16.0), 16);
    EXPECT_EQ(roundChannels(17.0), 16);
    EXPECT_EQ(roundChannels(20.0), 24);
    EXPECT_EQ(roundChannels(1.0), 8); // floor of 8
}

TEST(Generator, ProducesValidGraphs)
{
    RandomNetworkGenerator gen(SearchSpace{}, 7);
    for (int i = 0; i < 5; ++i) {
        const Graph g = gen.generate("net" + std::to_string(i));
        EXPECT_NO_THROW(g.validate());
        EXPECT_NO_THROW(quantize(g).validate());
        EXPECT_EQ(g.outputNode().kind, OpKind::Softmax);
    }
}

TEST(Generator, RespectsFlopsWindow)
{
    SearchSpace space;
    space.min_mmacs = 200.0;
    space.max_mmacs = 600.0;
    RandomNetworkGenerator gen(space, 11);
    for (int i = 0; i < 5; ++i) {
        const Graph g = gen.generate("n");
        const double mm = megaMacs(g);
        EXPECT_GE(mm, 200.0);
        EXPECT_LE(mm, 600.0);
    }
}

TEST(Generator, DeterministicForSeed)
{
    RandomNetworkGenerator a(SearchSpace{}, 13);
    RandomNetworkGenerator b(SearchSpace{}, 13);
    const Graph ga = a.generate("x");
    const Graph gb = b.generate("x");
    ASSERT_EQ(ga.numNodes(), gb.numNodes());
    for (std::size_t i = 0; i < ga.numNodes(); ++i) {
        EXPECT_EQ(ga.nodes()[i].kind, gb.nodes()[i].kind);
        EXPECT_EQ(ga.nodes()[i].shape, gb.nodes()[i].shape);
    }
}

TEST(Generator, DifferentSeedsProduceDifferentNetworks)
{
    RandomNetworkGenerator a(SearchSpace{}, 17);
    RandomNetworkGenerator b(SearchSpace{}, 19);
    const Graph ga = a.generate("x");
    const Graph gb = b.generate("x");
    const bool differ = ga.numNodes() != gb.numNodes()
        || totalMacs(ga) != totalMacs(gb);
    EXPECT_TRUE(differ);
}

TEST(Generator, SuiteNamingAndCount)
{
    RandomNetworkGenerator gen(SearchSpace{}, 23);
    const auto suite = gen.generateSuite(4, "rnd");
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].name(), "rnd000");
    EXPECT_EQ(suite[3].name(), "rnd003");
}

TEST(Generator, SuiteNetworksAreDiverse)
{
    RandomNetworkGenerator gen(SearchSpace{}, 29);
    const auto suite = gen.generateSuite(10, "d");
    std::set<std::int64_t> macs;
    for (const auto &g : suite)
        macs.insert(totalMacs(g));
    EXPECT_GE(macs.size(), 9u);
}

TEST(Generator, ImpossibleWindowThrows)
{
    SearchSpace space;
    space.min_mmacs = 1e9; // unreachable
    space.max_mmacs = 2e9;
    space.max_attempts = 5;
    RandomNetworkGenerator gen(space, 31);
    EXPECT_THROW(gen.generate("x"), GcmError);
}

TEST(Generator, ClassifierHeadPresent)
{
    RandomNetworkGenerator gen(SearchSpace{}, 37);
    const Graph g = gen.generate("x");
    EXPECT_GE(g.countKind(OpKind::FullyConnected), 1u);
    EXPECT_EQ(g.countKind(OpKind::GlobalAvgPool) >= 1, true);
    EXPECT_EQ(g.outputNode().shape, (TensorShape{1, 1, 1, 1000}));
}

/** Seed sweep: every generated network must be structurally valid. */
class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(GeneratorSeedTest, ValidAcrossSeeds)
{
    RandomNetworkGenerator gen(SearchSpace{}, GetParam());
    const Graph g = gen.generate("seeded");
    EXPECT_NO_THROW(g.validate());
    const Graph q = quantize(g);
    EXPECT_NO_THROW(q.validate());
    EXPECT_GT(totalMacs(g), 0);
    EXPECT_EQ(totalMacs(g), totalMacs(q));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 99u, 1234u,
                                           77777u));

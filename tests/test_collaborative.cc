/**
 * @file
 * Unit tests for the collaborative characterization simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/collaborative.hh"
#include "testing_support.hh"

using namespace gcm;
using namespace gcm::core;

namespace
{

CollaborativeConfig
smallConfig()
{
    CollaborativeConfig cfg;
    cfg.max_devices = 8;
    cfg.contribution_fraction = 0.2;
    cfg.gbt = gcmtest::fastGbt();
    return cfg;
}

} // namespace

TEST(Collaborative, SignatureChosenUpFront)
{
    const auto &ctx = gcmtest::smallContext();
    CollaborativeSimulation sim(ctx, 6);
    EXPECT_EQ(sim.signature().size(), 6u);
}

TEST(Collaborative, RunProducesOneStepPerDevice)
{
    const auto &ctx = gcmtest::smallContext();
    CollaborativeSimulation sim(ctx, 6);
    const auto steps = sim.run(smallConfig());
    ASSERT_EQ(steps.size(), 8u);
    for (std::size_t i = 0; i < steps.size(); ++i)
        EXPECT_EQ(steps[i].num_devices, i + 1);
}

TEST(Collaborative, MeasurementAccountingIsExact)
{
    const auto &ctx = gcmtest::smallContext();
    CollaborativeSimulation sim(ctx, 6);
    const auto cfg = smallConfig();
    const auto steps = sim.run(cfg);
    const auto per_device = static_cast<std::size_t>(
        cfg.contribution_fraction
        * static_cast<double>(ctx.numNetworks() - 6));
    EXPECT_EQ(steps.back().total_measurements,
              steps.size() * (6 + per_device));
}

TEST(Collaborative, AccuracyReasonableAfterSeveralDevices)
{
    const auto &ctx = gcmtest::smallContext();
    CollaborativeSimulation sim(ctx, 6);
    const auto steps = sim.run(smallConfig());
    // The reduced context has far fewer rows than the paper's
    // 50-device run; only the qualitative behaviour is asserted.
    EXPECT_GT(steps.back().avg_r2, 0.2);
    // Later iterations should beat the one-device model.
    EXPECT_GT(steps.back().avg_r2, steps.front().avg_r2);
}

TEST(Collaborative, IsolatedCurveShapeAndImprovement)
{
    const auto &ctx = gcmtest::smallContext();
    CollaborativeSimulation sim(ctx, 6);
    const auto curve =
        sim.isolatedCurve(0, 3, gcmtest::fastGbt(), /*stride=*/5);
    ASSERT_FALSE(curve.empty());
    EXPECT_EQ(curve.front().first, 5u);
    // More training networks should eventually help.
    EXPECT_GT(curve.back().second, curve.front().second);
    // Full-data fit is a training-set fit and should be strong.
    EXPECT_GT(curve.back().second, 0.8);
}

TEST(Collaborative, CollaborativeR2ForDeviceIsHigh)
{
    const auto &ctx = gcmtest::smallContext();
    CollaborativeSimulation sim(ctx, 6);
    CollaborativeConfig cfg = smallConfig();
    cfg.max_devices = ctx.fleet().size();
    const double r2 = sim.collaborativeR2ForDevice(0, cfg);
    EXPECT_GT(r2, 0.4);
}

TEST(Collaborative, DeterministicForSeed)
{
    const auto &ctx = gcmtest::smallContext();
    CollaborativeSimulation sim(ctx, 6);
    const auto a = sim.run(smallConfig());
    const auto b = sim.run(smallConfig());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].avg_r2, b[i].avg_r2);
}

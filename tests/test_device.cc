/**
 * @file
 * Unit tests for the synthesized device fleet.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/device.hh"
#include "util/error.hh"

using namespace gcm::sim;
using gcm::GcmError;

TEST(DeviceDatabase, StandardFleetHas105Devices)
{
    const auto db = DeviceDatabase::standard();
    EXPECT_EQ(db.size(), 105u);
}

TEST(DeviceDatabase, IdsAreSequential)
{
    const auto db = DeviceDatabase::standard();
    for (std::size_t i = 0; i < db.size(); ++i)
        EXPECT_EQ(db.device(i).id, static_cast<std::int32_t>(i));
}

TEST(DeviceDatabase, DeterministicForSeed)
{
    const auto a = DeviceDatabase::standard(2020);
    const auto b = DeviceDatabase::standard(2020);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.device(i).model_name, b.device(i).model_name);
        EXPECT_DOUBLE_EQ(a.device(i).freq_ghz, b.device(i).freq_ghz);
        EXPECT_DOUBLE_EQ(a.device(i).hidden.thermal_sustain,
                         b.device(i).hidden.thermal_sustain);
    }
}

TEST(DeviceDatabase, DifferentSeedsDiffer)
{
    const auto a = DeviceDatabase::standard(2020);
    const auto b = DeviceDatabase::standard(2021);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a.device(i).freq_ghz != b.device(i).freq_ghz)
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(DeviceDatabase, ModelNamesAreUnique)
{
    const auto db = DeviceDatabase::standard();
    std::set<std::string> names;
    for (const auto &d : db.devices())
        names.insert(d.model_name);
    EXPECT_EQ(names.size(), db.size());
}

TEST(DeviceDatabase, RedmiNote5ProPresentWithKryo260)
{
    // The paper's collaborative case study hinges on this device.
    const auto db = DeviceDatabase::standard();
    const DeviceSpec &d = db.byName("Redmi-Note-5-Pro");
    EXPECT_EQ(db.coreOf(d).name, "Kryo-260-Gold");
    EXPECT_EQ(db.chipsetOf(d).name, "Snapdragon-636");
}

TEST(DeviceDatabase, UnknownModelThrows)
{
    const auto db = DeviceDatabase::standard();
    EXPECT_THROW(db.byName("iPhone-11"), GcmError);
}

TEST(DeviceDatabase, HiddenFactorsWithinModeledRanges)
{
    const auto db = DeviceDatabase::standard();
    for (const auto &d : db.devices()) {
        EXPECT_GE(d.hidden.thermal_sustain, 0.35);
        EXPECT_LE(d.hidden.thermal_sustain, 1.0);
        EXPECT_GE(d.hidden.mem_efficiency, 0.45);
        EXPECT_LE(d.hidden.mem_efficiency, 1.05);
        EXPECT_GE(d.hidden.os_overhead, 1.0);
        EXPECT_LE(d.hidden.os_overhead, 2.0);
        EXPECT_GE(d.hidden.silicon_bin, 0.88);
        EXPECT_LE(d.hidden.silicon_bin, 1.06);
    }
}

TEST(DeviceDatabase, FrequenciesNearChipsetSpec)
{
    const auto db = DeviceDatabase::standard();
    for (const auto &d : db.devices()) {
        const Chipset &c = db.chipsetOf(d);
        EXPECT_LE(d.freq_ghz, c.max_freq_ghz + 1e-9);
        EXPECT_GE(d.freq_ghz, 0.9 * c.max_freq_ghz);
    }
}

TEST(DeviceDatabase, RamComesFromChipsetOptions)
{
    const auto db = DeviceDatabase::standard();
    for (const auto &d : db.devices()) {
        const Chipset &c = db.chipsetOf(d);
        bool found = false;
        for (double r : c.ram_options_gb) {
            if (r == d.ram_gb)
                found = true;
        }
        EXPECT_TRUE(found) << d.model_name;
    }
}

TEST(DeviceDatabase, FleetIsDiverse)
{
    // The paper's fleet covers many chipsets and core families.
    const auto db = DeviceDatabase::standard();
    std::set<std::size_t> chipsets;
    std::set<std::string> cores;
    for (const auto &d : db.devices()) {
        chipsets.insert(d.chipset_index);
        cores.insert(db.coreOf(d).name);
    }
    EXPECT_GE(chipsets.size(), 25u);
    EXPECT_GE(cores.size(), 12u);
}

TEST(DeviceDatabase, CustomFleetSize)
{
    const auto db = DeviceDatabase::standard(7, 30);
    EXPECT_EQ(db.size(), 30u);
}

TEST(DeviceDatabase, FromDevicesRoundTripsSpecs)
{
    const auto seed = DeviceDatabase::standard(2020, 10);
    std::vector<DeviceSpec> specs(seed.devices().begin(),
                                  seed.devices().end());
    const auto db = DeviceDatabase::fromDevices(specs);
    ASSERT_EQ(db.size(), 10u);
    for (std::size_t i = 0; i < db.size(); ++i) {
        EXPECT_EQ(db.device(i).model_name, seed.device(i).model_name);
        EXPECT_DOUBLE_EQ(db.device(i).freq_ghz,
                         seed.device(i).freq_ghz);
        EXPECT_EQ(&db.chipsetOf(db.device(i)),
                  &db.chipsetOf(db.device(i)));
    }
    EXPECT_EQ(db.byName(seed.device(3).model_name).id,
              seed.device(3).id);
}

TEST(DeviceDatabase, FromDevicesRejectsBadSpecs)
{
    EXPECT_THROW(DeviceDatabase::fromDevices({}), GcmError);

    const auto seed = DeviceDatabase::standard(2020, 4);
    std::vector<DeviceSpec> specs(seed.devices().begin(),
                                  seed.devices().end());

    auto dup_id = specs;
    dup_id[1].id = dup_id[0].id;
    dup_id[1].model_name = "unique-name";
    EXPECT_THROW(DeviceDatabase::fromDevices(dup_id), GcmError);

    auto dup_name = specs;
    dup_name[2].model_name = dup_name[0].model_name;
    EXPECT_THROW(DeviceDatabase::fromDevices(dup_name), GcmError);

    auto bad_chipset = specs;
    bad_chipset[3].chipset_index = 1000000;
    EXPECT_THROW(DeviceDatabase::fromDevices(bad_chipset), GcmError);
}

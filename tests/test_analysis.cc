/**
 * @file
 * Unit tests for static graph cost analysis (MACs, params, bytes).
 */

#include <gtest/gtest.h>

#include "dnn/analysis.hh"
#include "dnn/quantize.hh"

using namespace gcm::dnn;

TEST(Analysis, ConvMacsHandComputed)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 4});
    b.conv2d(b.input(), 16, 3, 1, 1);
    const Graph g = b.build();
    // out 8x8x16, each output = 3*3*4 MACs.
    EXPECT_EQ(totalMacs(g), 8LL * 8 * 16 * 3 * 3 * 4);
}

TEST(Analysis, GroupedConvDividesMacs)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 8});
    b.conv2d(b.input(), 16, 3, 1, 1, /*groups=*/2);
    const Graph g = b.build();
    EXPECT_EQ(totalMacs(g), 8LL * 8 * 16 * 3 * 3 * 4);
}

TEST(Analysis, DepthwiseMacs)
{
    GraphBuilder b("t", TensorShape{1, 10, 10, 32});
    b.depthwiseConv2d(b.input(), 3, 1, 1);
    const Graph g = b.build();
    EXPECT_EQ(totalMacs(g), 10LL * 10 * 32 * 3 * 3);
}

TEST(Analysis, FullyConnectedMacs)
{
    GraphBuilder b("t", TensorShape{1, 1, 1, 256});
    b.fullyConnected(b.input(), 10);
    const Graph g = b.build();
    EXPECT_EQ(totalMacs(g), 2560);
}

TEST(Analysis, FullyConnectedFlattensSpatialInput)
{
    GraphBuilder b("t", TensorShape{1, 7, 7, 64});
    b.fullyConnected(b.input(), 10);
    const Graph g = b.build();
    EXPECT_EQ(totalMacs(g), 7LL * 7 * 64 * 10);
}

TEST(Analysis, ConvParamsIncludeBias)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 4});
    b.conv2d(b.input(), 16, 3, 1, 1);
    const Graph g = b.build();
    EXPECT_EQ(totalParams(g), 3LL * 3 * 4 * 16 + 16);
}

TEST(Analysis, ActivationHasNoMacs)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 4});
    b.relu(b.input());
    const Graph g = b.build();
    EXPECT_EQ(totalMacs(g), 0);
    const NodeCost c = nodeCost(g, g.outputNode());
    EXPECT_EQ(c.simple_ops, 8 * 8 * 4);
}

TEST(Analysis, PoolSimpleOpsScaleWithWindow)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 4});
    b.maxPool2d(b.input(), 2, 2);
    const Graph g = b.build();
    const NodeCost c = nodeCost(g, g.outputNode());
    EXPECT_EQ(c.simple_ops, 4LL * 4 * 4 * 2 * 2);
}

TEST(Analysis, Int8HalvesNothingButShrinksBytes)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 4});
    b.conv2d(b.input(), 16, 3, 1, 1);
    const Graph fp32 = b.build();
    const Graph int8 = quantize(fp32);
    EXPECT_EQ(totalMacs(fp32), totalMacs(int8));
    const NodeCost cf = nodeCost(fp32, fp32.outputNode());
    const NodeCost cq = nodeCost(int8, int8.outputNode());
    EXPECT_EQ(cf.output_bytes, 4 * cq.output_bytes);
    EXPECT_LT(cq.weight_bytes, cf.weight_bytes);
}

TEST(Analysis, MegaMacsUnits)
{
    GraphBuilder b("t", TensorShape{1, 100, 100, 10});
    b.conv2d(b.input(), 10, 1, 1, 0);
    const Graph g = b.build();
    EXPECT_DOUBLE_EQ(megaMacs(g), 1.0); // 100*100*10*10 = 1e6
}

TEST(Analysis, AddCountsElementwiseOps)
{
    GraphBuilder b("t", TensorShape{1, 4, 4, 4});
    const NodeId x = b.conv2d(b.input(), 4, 1, 1, 0);
    b.add(b.input(), x);
    const Graph g = b.build();
    const NodeCost c = nodeCost(g, g.outputNode());
    EXPECT_EQ(c.simple_ops, 4 * 4 * 4);
    EXPECT_EQ(c.input_bytes, 2 * 4 * 4 * 4 * 4); // two fp32 inputs
}

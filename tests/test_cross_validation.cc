/**
 * @file
 * Unit tests for k-fold cross-validation over devices.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/cross_validation.hh"
#include "testing_support.hh"

using namespace gcm;
using namespace gcm::core;

TEST(KFold, PartitionCoversAllDevicesOnce)
{
    const auto folds = kFoldDevices(23, 5, 1);
    ASSERT_EQ(folds.size(), 5u);
    std::set<std::size_t> seen;
    for (const auto &fold : folds) {
        // Near-equal fold sizes.
        EXPECT_GE(fold.size(), 4u);
        EXPECT_LE(fold.size(), 5u);
        for (std::size_t d : fold) {
            EXPECT_TRUE(seen.insert(d).second) << "duplicate " << d;
            EXPECT_LT(d, 23u);
        }
    }
    EXPECT_EQ(seen.size(), 23u);
}

TEST(KFold, DeterministicPerSeed)
{
    EXPECT_EQ(kFoldDevices(20, 4, 7), kFoldDevices(20, 4, 7));
    EXPECT_NE(kFoldDevices(20, 4, 7), kFoldDevices(20, 4, 8));
}

TEST(KFold, RejectsDegenerateArguments)
{
    EXPECT_DEATH((void)kFoldDevices(10, 1, 1), "folds");
    EXPECT_DEATH((void)kFoldDevices(3, 5, 1), "folds");
}

TEST(CrossValidation, MeanMatchesFolds)
{
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    SignatureConfig cfg;
    cfg.size = 6;
    const auto cv = crossValidateSignatureModel(
        h, ctx.fleet().size(), 3, SignatureMethod::MutualInformation,
        cfg, gcmtest::fastGbt());
    ASSERT_EQ(cv.fold_r2.size(), 3u);
    double sum = 0.0;
    for (double r : cv.fold_r2)
        sum += r;
    EXPECT_NEAR(cv.mean_r2, sum / 3.0, 1e-12);
    EXPECT_GE(cv.std_r2, 0.0);
    EXPECT_GT(cv.mean_mape_pct, 0.0);
}

TEST(CrossValidation, ReasonableAccuracyOnSmallContext)
{
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    SignatureConfig cfg;
    cfg.size = 6;
    const auto cv = crossValidateSignatureModel(
        h, ctx.fleet().size(), 4, SignatureMethod::RandomSampling, cfg,
        gcmtest::fastGbt());
    EXPECT_GT(cv.mean_r2, 0.7);
}

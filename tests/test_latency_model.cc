/**
 * @file
 * Unit tests for the analytical latency model: monotonicity and
 * bottleneck behaviour, not absolute numbers.
 */

#include <gtest/gtest.h>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "sim/latency_model.hh"

using namespace gcm::sim;
using namespace gcm::dnn;

namespace
{

DeviceSpec
makeDevice(const std::string &chipset, double freq, double thermal = 1.0)
{
    DeviceSpec d;
    d.id = 0;
    d.model_name = "test-device";
    d.chipset_index = chipsetIndexByName(chipset);
    d.freq_ghz = freq;
    d.ram_gb = 4;
    d.hidden.thermal_sustain = thermal;
    return d;
}

const Chipset &
chipsetOf(const DeviceSpec &d)
{
    return chipsetTable()[d.chipset_index];
}

Graph
v2()
{
    static const Graph g = quantize(buildZooModel("mobilenet_v2_1.0"));
    return g;
}

} // namespace

TEST(LatencyModel, PositiveLatency)
{
    const auto d = makeDevice("Snapdragon-625", 2.0);
    LatencyModel m;
    EXPECT_GT(m.graphLatencyMs(v2(), d, chipsetOf(d)), 0.0);
}

TEST(LatencyModel, HigherFrequencyIsFaster)
{
    const auto slow = makeDevice("Snapdragon-625", 1.4);
    const auto fast = makeDevice("Snapdragon-625", 2.0);
    LatencyModel m;
    EXPECT_GT(m.graphLatencyMs(v2(), slow, chipsetOf(slow)),
              m.graphLatencyMs(v2(), fast, chipsetOf(fast)));
}

TEST(LatencyModel, BetterCoreIsFaster)
{
    // Same frequency: Kryo 485 (A76-class, dotprod) beats A53.
    const auto a53 = makeDevice("Snapdragon-625", 2.0);
    const auto a76 = makeDevice("Snapdragon-855", 2.0);
    LatencyModel m;
    EXPECT_GT(m.graphLatencyMs(v2(), a53, chipsetOf(a53)),
              2.0 * m.graphLatencyMs(v2(), a76, chipsetOf(a76)));
}

TEST(LatencyModel, ThermalThrottlingSlowsDown)
{
    const auto cool = makeDevice("Snapdragon-845", 2.8, 1.0);
    const auto hot = makeDevice("Snapdragon-845", 2.8, 0.5);
    LatencyModel m;
    const double t_cool = m.graphLatencyMs(v2(), cool, chipsetOf(cool));
    const double t_hot = m.graphLatencyMs(v2(), hot, chipsetOf(hot));
    EXPECT_GT(t_hot, 1.3 * t_cool);
}

TEST(LatencyModel, BiggerNetworkTakesLonger)
{
    const auto d = makeDevice("Snapdragon-636", 1.8);
    LatencyModel m;
    const Graph small = quantize(buildZooModel("mobilenet_v3_small"));
    const Graph big = quantize(buildZooModel("mobilenet_v2_1.4"));
    EXPECT_GT(m.graphLatencyMs(big, d, chipsetOf(d)),
              m.graphLatencyMs(small, d, chipsetOf(d)));
}

TEST(LatencyModel, LayersSumToGraphTotal)
{
    const auto d = makeDevice("Snapdragon-636", 1.8);
    LatencyModel m;
    const Graph g = v2();
    double sum = 0.0;
    for (const auto &node : g.nodes())
        sum += m.layerLatencyMs(g, node, d, chipsetOf(d));
    const double total = m.graphLatencyMs(g, d, chipsetOf(d));
    EXPECT_GT(total, sum); // graph overhead added
    EXPECT_NEAR(total, sum, 1.0);
}

TEST(LatencyModel, InputNodeIsFree)
{
    const auto d = makeDevice("Snapdragon-636", 1.8);
    LatencyModel m;
    const Graph g = v2();
    EXPECT_DOUBLE_EQ(m.layerLatencyMs(g, g.node(0), d, chipsetOf(d)),
                     0.0);
}

TEST(LatencyModel, DepthwiseLessEfficientThanDense)
{
    // Same MAC count: depthwise should take longer than a dense conv
    // thanks to its lower modeled utilization.
    GraphBuilder bd("dw", TensorShape{1, 56, 56, 256});
    bd.depthwiseConv2d(bd.input(), 3, 1, 1);
    const Graph dw = quantize(bd.build());

    GraphBuilder bc("conv", TensorShape{1, 56, 56, 16});
    bc.conv2d(bc.input(), 16, 4, 1, 1); // 16*16*k4 == 256*k3 MACs? No:
    // 56x56x16 out, 4x4x16 each = identical 56*56*256*9? Use direct
    // comparison of per-MAC time instead.
    const Graph conv = quantize(bc.build());

    const auto d = makeDevice("Snapdragon-845", 2.8);
    LatencyModel m;
    const double t_dw = m.graphLatencyMs(dw, d, chipsetOf(d));
    const double t_conv = m.graphLatencyMs(conv, d, chipsetOf(d));
    const double dw_macs = 56.0 * 56 * 256 * 9;
    const double conv_macs = 53.0 * 53 * 16 * 4 * 4 * 16;
    EXPECT_GT(t_dw / dw_macs, t_conv / conv_macs);
}

TEST(LatencyModel, WorseMemoryEfficiencyHurtsWeightHeavyLayers)
{
    // A fully-connected layer is weight-streaming bound; memory
    // efficiency should dominate its latency.
    GraphBuilder b("fc", TensorShape{1, 1, 1, 4096});
    b.fullyConnected(b.input(), 4096);
    const Graph g = quantize(b.build());
    auto fast_mem = makeDevice("Snapdragon-636", 1.8);
    auto slow_mem = fast_mem;
    fast_mem.hidden.mem_efficiency = 1.0;
    slow_mem.hidden.mem_efficiency = 0.5;
    LatencyModel m;
    EXPECT_GT(m.graphLatencyMs(g, slow_mem, chipsetOf(slow_mem)),
              1.5 * m.graphLatencyMs(g, fast_mem, chipsetOf(fast_mem)));
}

TEST(LatencyModel, OsOverheadScalesDispatch)
{
    auto lean = makeDevice("Snapdragon-636", 1.8);
    auto bloated = lean;
    lean.hidden.os_overhead = 1.0;
    bloated.hidden.os_overhead = 1.8;
    LatencyModel m;
    EXPECT_GT(m.graphLatencyMs(v2(), bloated, chipsetOf(bloated)),
              m.graphLatencyMs(v2(), lean, chipsetOf(lean)));
}

TEST(LatencyModel, DotprodSpeedsUpInt8Conv)
{
    // Helio-G90T (A76, dotprod) vs Helio-P60 (A73, no dotprod) at the
    // same frequency: conv-heavy graphs must be faster on the former.
    auto a76 = makeDevice("Helio-G90T", 2.0);
    auto a73 = makeDevice("Helio-P60", 2.0);
    LatencyModel m;
    EXPECT_LT(m.graphLatencyMs(v2(), a76, chipsetOf(a76)),
              m.graphLatencyMs(v2(), a73, chipsetOf(a73)));
}

/**
 * @file
 * Unit tests for the small linear-algebra helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/linalg.hh"
#include "util/error.hh"

using namespace gcm::stats;
using gcm::GcmError;

TEST(Linalg, CholeskyLogDetIdentity)
{
    SymmetricMatrix m(3);
    for (std::size_t i = 0; i < 3; ++i)
        m.at(i, i) = 1.0;
    EXPECT_NEAR(choleskyLogDet(m), 0.0, 1e-12);
}

TEST(Linalg, CholeskyLogDetDiagonal)
{
    SymmetricMatrix m(2);
    m.at(0, 0) = 4.0;
    m.at(1, 1) = 9.0;
    EXPECT_NEAR(choleskyLogDet(m), std::log(36.0), 1e-12);
}

TEST(Linalg, CholeskyLogDetGeneral)
{
    // det([[2,1],[1,2]]) = 3.
    SymmetricMatrix m(2);
    m.at(0, 0) = 2.0;
    m.at(0, 1) = 1.0;
    m.at(1, 0) = 1.0;
    m.at(1, 1) = 2.0;
    EXPECT_NEAR(choleskyLogDet(m), std::log(3.0), 1e-12);
}

TEST(Linalg, NonPositiveDefiniteThrows)
{
    SymmetricMatrix m(2);
    m.at(0, 0) = 1.0;
    m.at(0, 1) = 2.0;
    m.at(1, 0) = 2.0;
    m.at(1, 1) = 1.0; // eigenvalues 3, -1
    EXPECT_THROW(choleskyLogDet(m), GcmError);
}

TEST(Linalg, CovarianceDiagonalIsVariance)
{
    const std::vector<std::vector<double>> vars = {
        {1, 2, 3, 4}, {2, 2, 2, 2}};
    const auto cov = covarianceMatrix(vars);
    EXPECT_NEAR(cov.at(0, 0), 5.0 / 3.0, 1e-12); // var of 1..4
    EXPECT_NEAR(cov.at(1, 1), 0.0, 1e-12);
    EXPECT_NEAR(cov.at(0, 1), 0.0, 1e-12);
}

TEST(Linalg, CovarianceOfPerfectlyCorrelated)
{
    const std::vector<std::vector<double>> vars = {
        {1, 2, 3}, {2, 4, 6}};
    const auto cov = covarianceMatrix(vars);
    EXPECT_NEAR(cov.at(0, 1), 2.0 * cov.at(0, 0), 1e-12);
}

TEST(Linalg, CovarianceRidgeAddsToDiagonal)
{
    const std::vector<std::vector<double>> vars = {{1, 2, 3}};
    const auto plain = covarianceMatrix(vars, 0.0);
    const auto ridged = covarianceMatrix(vars, 0.5);
    EXPECT_NEAR(ridged.at(0, 0) - plain.at(0, 0), 0.5, 1e-12);
}

TEST(Linalg, Submatrix)
{
    SymmetricMatrix m(3);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j)
            m.at(i, j) = static_cast<double>(i * 3 + j);
    }
    const auto sub = m.submatrix({0, 2});
    EXPECT_EQ(sub.size(), 2u);
    EXPECT_DOUBLE_EQ(sub.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(sub.at(1, 0), 6.0);
    EXPECT_DOUBLE_EQ(sub.at(1, 1), 8.0);
}

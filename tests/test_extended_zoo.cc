/**
 * @file
 * Unit tests for the extended zoo (EfficientNet-B0, ShuffleNetV2,
 * ResNet-18) and the ChannelShuffle operator.
 */

#include <gtest/gtest.h>

#include "dnn/analysis.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"

using namespace gcm::dnn;
using gcm::GcmError;

TEST(ChannelShuffle, PreservesShape)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 16});
    const NodeId x = b.channelShuffle(b.input(), 2);
    EXPECT_EQ(b.shapeOf(x), (TensorShape{1, 8, 8, 16}));
}

TEST(ChannelShuffle, RejectsIndivisibleGroups)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 10});
    EXPECT_THROW((void)b.channelShuffle(b.input(), 4), GcmError);
}

TEST(ChannelShuffle, IsPureDataMovement)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 16});
    b.channelShuffle(b.input(), 2);
    const Graph g = b.build();
    const NodeCost c = nodeCost(g, g.outputNode());
    EXPECT_EQ(c.macs, 0);
    EXPECT_EQ(c.simple_ops, 8 * 8 * 16);
    EXPECT_EQ(c.params, 0);
}

TEST(ExtendedZoo, ThreeModels)
{
    EXPECT_EQ(extendedZooModelNames().size(), 3u);
}

TEST(ExtendedZoo, NotPartOfThePaperSuite)
{
    // buildZoo() must stay the paper's 18 networks.
    EXPECT_EQ(buildZoo().size(), 18u);
    for (const auto &name : extendedZooModelNames()) {
        for (const auto &g : buildZoo())
            EXPECT_NE(g.name(), name);
    }
}

TEST(ExtendedZoo, AllValidateAndQuantize)
{
    for (const auto &name : extendedZooModelNames()) {
        const Graph g = buildZooModel(name);
        EXPECT_EQ(g.name(), name);
        EXPECT_NO_THROW(g.validate());
        EXPECT_NO_THROW(quantize(g).validate());
    }
}

TEST(ExtendedZoo, EfficientNetB0MacsMatchPaper)
{
    // Tan & Le report ~390M MAdds for EfficientNet-B0.
    EXPECT_NEAR(megaMacs(buildZooModel("efficientnet_b0")), 390.0, 40.0);
}

TEST(ExtendedZoo, ShuffleNetUsesChannelShuffle)
{
    const Graph g = buildZooModel("shufflenet_v2_1.0");
    EXPECT_GT(g.countKind(OpKind::ChannelShuffle), 10u);
    // ShuffleNetV2 1.0x is ~146M MACs; the split approximation adds
    // the shortcut 1x1 projections, so allow a generous band.
    EXPECT_LT(megaMacs(g), 300.0);
}

TEST(ExtendedZoo, ResNet18MacsMatchPaper)
{
    // He et al. report ~1.8 GFLOPs = ~1.8e3 MMACs... (FLOPs = 2*MACs
    // in their accounting; 1.8G "FLOPs" corresponds to ~1.8G MACs in
    // common tables).
    EXPECT_NEAR(megaMacs(buildZooModel("resnet_18")), 1820.0, 120.0);
}

TEST(ExtendedZoo, EveryModelHasSquareClassifier)
{
    for (const auto &name : extendedZooModelNames()) {
        const Graph g = buildZooModel(name);
        EXPECT_EQ(g.outputNode().shape.c, 1000) << name;
    }
}

/**
 * @file
 * Unit tests for the evaluation harness (device splits, static vs
 * signature models).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/evaluation.hh"
#include "testing_support.hh"
#include "util/error.hh"

using namespace gcm;
using namespace gcm::core;

TEST(SplitDevices, PartitionIsExactAndDisjoint)
{
    const auto split = splitDevices(100, 0.3, 1);
    EXPECT_EQ(split.test.size(), 30u);
    EXPECT_EQ(split.train.size(), 70u);
    std::set<std::size_t> all(split.train.begin(), split.train.end());
    all.insert(split.test.begin(), split.test.end());
    EXPECT_EQ(all.size(), 100u);
}

TEST(SplitDevices, DeterministicPerSeed)
{
    const auto a = splitDevices(50, 0.3, 9);
    const auto b = splitDevices(50, 0.3, 9);
    EXPECT_EQ(a.train, b.train);
    const auto c = splitDevices(50, 0.3, 10);
    EXPECT_NE(a.train, c.train);
}

TEST(SplitDevices, DegenerateFractionAborts)
{
    EXPECT_DEATH((void)splitDevices(10, 0.001, 1), "degenerate");
}

TEST(Evaluation, SignatureModelLearnsWell)
{
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    const auto split = splitDevices(ctx.fleet().size(), 0.3, 42);
    SignatureConfig cfg;
    cfg.size = 8;
    const auto eval = h.evalSignatureModel(
        split, SignatureMethod::MutualInformation, cfg,
        gcmtest::fastGbt());
    EXPECT_GT(eval.r2, 0.7);
    EXPECT_EQ(eval.signature.size(), 8u);
    // Test rows: test devices x non-signature networks.
    EXPECT_EQ(eval.y_true.size(),
              split.test.size() * (ctx.numNetworks() - 8));
}

TEST(Evaluation, SignatureBeatsStaticSpecs)
{
    // The paper's central claim, on the reduced dataset.
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    const auto split = splitDevices(ctx.fleet().size(), 0.3, 42);
    const auto stat = h.evalStaticFeatureModel(split, gcmtest::fastGbt());
    SignatureConfig cfg;
    cfg.size = 8;
    const auto sig = h.evalSignatureModel(
        split, SignatureMethod::MutualInformation, cfg,
        gcmtest::fastGbt());
    EXPECT_GT(sig.r2, stat.r2 + 0.05);
}

TEST(Evaluation, SignatureNetworksExcludedFromRows)
{
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    const auto split = splitDevices(ctx.fleet().size(), 0.3, 7);
    // Force a known signature and check the row count shrinks.
    const std::vector<std::size_t> signature{0, 1, 2};
    const auto eval =
        h.evalWithSignature(split, signature, gcmtest::fastGbt());
    EXPECT_EQ(eval.y_true.size(),
              split.test.size() * (ctx.numNetworks() - 3));
}

TEST(Evaluation, SelectionUsesOnlyTrainDevices)
{
    // Selecting on the train matrix must not depend on test devices:
    // swap the test set for a different one and the signature chosen
    // by a deterministic method stays identical.
    const auto &ctx = gcmtest::smallContext();
    const auto full = splitDevices(ctx.fleet().size(), 0.3, 11);
    DeviceSplit alt = full;
    alt.test.resize(2); // different test set, same train set
    const auto train_lat = ctx.latencyMatrix(full.train);
    SignatureConfig cfg;
    cfg.size = 5;
    const auto sig1 =
        selectSignature(train_lat, SignatureMethod::MutualInformation,
                        cfg);
    const auto train_lat2 = ctx.latencyMatrix(alt.train);
    const auto sig2 =
        selectSignature(train_lat2, SignatureMethod::MutualInformation,
                        cfg);
    EXPECT_EQ(sig1, sig2);
}

TEST(Evaluation, MetricsConsistent)
{
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    const auto split = splitDevices(ctx.fleet().size(), 0.3, 13);
    SignatureConfig cfg;
    cfg.size = 5;
    const auto eval = h.evalSignatureModel(
        split, SignatureMethod::RandomSampling, cfg, gcmtest::fastGbt());
    EXPECT_GT(eval.rmse_ms, 0.0);
    EXPECT_GT(eval.mape_pct, 0.0);
    EXPECT_EQ(eval.y_true.size(), eval.y_pred.size());
}

TEST(Evaluation, EncodingsCachedForAllNetworks)
{
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    EXPECT_EQ(h.encodings().size(), ctx.numNetworks());
    for (const auto &e : h.encodings())
        EXPECT_EQ(e.size(), ctx.encoder().numFeatures());
}

TEST(Evaluation, AnchorNormalizationHelpsAdversarialSplits)
{
    // Hold out the slowest third of devices: the raw-millisecond
    // representation cannot extrapolate, the anchor-normalized one
    // can.
    const auto &ctx = gcmtest::smallContext();
    std::vector<std::size_t> by_speed(ctx.fleet().size());
    for (std::size_t i = 0; i < by_speed.size(); ++i)
        by_speed[i] = i;
    const auto vectors = ctx.deviceVectors();
    std::vector<double> mean(vectors.size(), 0.0);
    for (std::size_t d = 0; d < vectors.size(); ++d) {
        for (double v : vectors[d])
            mean[d] += v;
    }
    std::sort(by_speed.begin(), by_speed.end(),
              [&](std::size_t a, std::size_t b) {
                  return mean[a] < mean[b];
              });
    DeviceSplit adversarial;
    const std::size_t cut = by_speed.size() * 2 / 3;
    adversarial.train.assign(by_speed.begin(),
                             by_speed.begin()
                                 + static_cast<std::ptrdiff_t>(cut));
    adversarial.test.assign(
        by_speed.begin() + static_cast<std::ptrdiff_t>(cut),
        by_speed.end());

    EvaluationHarness anchored(ctx);
    HarnessOptions raw_opts;
    raw_opts.anchor_normalization = false;
    EvaluationHarness raw(ctx, raw_opts);
    SignatureConfig cfg;
    cfg.size = 8;
    const double r2_anchor =
        anchored
            .evalSignatureModel(adversarial,
                                SignatureMethod::MutualInformation, cfg,
                                gcmtest::fastGbt())
            .r2;
    const double r2_raw =
        raw.evalSignatureModel(adversarial,
                               SignatureMethod::MutualInformation, cfg,
                               gcmtest::fastGbt())
            .r2;
    EXPECT_GT(r2_anchor, r2_raw + 0.1);
    EXPECT_GT(r2_anchor, 0.6);
}

TEST(Evaluation, AnchorMetricsStayInMilliseconds)
{
    // y_true must equal the raw measured latencies whether or not the
    // internal representation is normalized.
    const auto &ctx = gcmtest::smallContext();
    EvaluationHarness h(ctx);
    const auto split = splitDevices(ctx.fleet().size(), 0.3, 21);
    const std::vector<std::size_t> signature{0, 1, 2, 3};
    const auto eval =
        h.evalWithSignature(split, signature, gcmtest::fastGbt());
    std::size_t i = 0;
    for (std::size_t d : split.test) {
        for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
            if (n <= 3)
                continue;
            ASSERT_LT(i, eval.y_true.size());
            EXPECT_NEAR(eval.y_true[i], ctx.latencyMs(d, n), 1e-6);
            ++i;
        }
    }
}

/**
 * @file
 * Overload soak for the multi-worker serving front end, run in the
 * TSan lane of tools/check.sh (and as a ctest integration target).
 *
 * Drives an open-loop Poisson stream at 2x the front end's full-tier
 * capacity — a regime a closed-loop generator can never reach — with
 * GCM_THREADS workers racing over the shared cache and the pinned
 * registry snapshots, while an operator thread churns activations,
 * rollbacks and a retire. Asserts the robustness acceptance criteria
 * of the degradation ladder:
 *
 *   - exact accounting: full + stale + analytical + shed == offered
 *   - the ladder actually sheds (shed_rate > 0) at 2x overload
 *   - degradation preserves goodput >= 80% of full-tier capacity
 *   - every arrival gets exactly one well-formed response line
 *
 * Plain main (no gtest): exits 0 on success, 1 with a diagnostic on
 * the first violated invariant.
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/frontend.hh"
#include "serve/loadgen.hh"
#include "serve/registry.hh"
#include "testing_support.hh"

using namespace gcm;

namespace
{

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "soak_serve_overload: FAIL: %s\n",
                     what.c_str());
        ++failures;
    }
}

} // namespace

int
main()
{
    // Small trained model, published twice so the stale rung has a
    // previous version to pin.
    const auto &ctx = gcmtest::smallContext();
    std::vector<std::size_t> devices(ctx.fleet().size());
    for (std::size_t i = 0; i < devices.size(); ++i)
        devices[i] = i;
    core::SignatureCostModel::Config mcfg;
    mcfg.gbt = gcmtest::fastGbt();
    const auto model = core::SignatureCostModel::train(
        ctx.suite(), ctx.latencyMatrix(devices), mcfg);

    serve::ModelRegistry registry;
    std::stringstream s1, s2;
    model.serialize(s1);
    model.serialize(s2);
    registry.publish(serve::ModelSnapshot::fromStream(s1));
    const auto v2 =
        registry.publish(serve::ModelSnapshot::fromStream(s2));

    serve::PredictionService::DeviceTable table;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        std::vector<double> sig;
        for (const auto &name : model.signatureNames())
            sig.push_back(ctx.latencyMs(d, ctx.networkIndex(name)));
        table[ctx.fleet().devices()[d].model_name] = std::move(sig);
    }

    serve::FrontEndConfig cfg; // workers = 0: GCM_THREADS decides
    serve::ServerFrontEnd frontend(registry, std::move(table), cfg);

    serve::LoadGenConfig gen;
    gen.requests = 4000;
    gen.seed = 1234;
    gen.bulk_fraction = 0.25;
    gen.offered_qps = 2.0 * frontend.capacityQps();

    // Operator churn while the run is in flight: the pinned snapshots
    // must survive rollback + retire of the version they point at.
    std::thread operator_thread([&registry, v2] {
        for (int i = 0; i < 50; ++i) {
            registry.activate(1 + (i % 2));
            std::this_thread::yield();
        }
        registry.activate(1);
        registry.retire(v2);
    });

    std::ostringstream out;
    const auto report = serve::runOpenLoadGen(frontend, gen, &out);
    operator_thread.join();

    std::fprintf(stderr, "%s\n", report.summary().c_str());

    const auto &fr = report.frontend;
    check(fr.offered == gen.requests, "offered != requests generated");
    check(fr.tier_full + fr.tier_stale + fr.tier_analytical
              + fr.tier_shed
          == fr.offered,
          "tier accounting does not sum to offered");
    check(fr.served() == fr.offered - fr.tier_shed,
          "served != offered - shed");
    check(fr.tier_shed > 0, "2x overload did not shed");
    check(fr.shed_rate > 0.0, "shed_rate not positive");
    check(fr.goodput_qps >= 0.8 * frontend.capacityQps(),
          "goodput fell below 80% of capacity");
    check(fr.errors == 0, "generated stream produced error responses");

    std::size_t lines = 0;
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line); ++lines)
        check(!line.empty() && line.front() == '{'
                  && line.back() == '}',
              "torn or non-JSON response line");
    check(lines == gen.requests, "response count != offered count");

    if (failures == 0)
        std::fprintf(stderr, "soak_serve_overload: OK (%zu workers)\n",
                     frontend.workers());
    return failures == 0 ? 0 : 1;
}

/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hh"

using gcm::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanApproximatesHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniformInt(2, 6);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(9, 9), 9);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams)
{
    Rng rng(17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalFactorMedianNearOne)
{
    Rng rng(19);
    std::vector<double> v;
    for (int i = 0; i < 10001; ++i)
        v.push_back(rng.lognormalFactor(0.2));
    std::sort(v.begin(), v.end());
    EXPECT_NEAR(v[5000], 1.0, 0.05);
    EXPECT_GT(v.front(), 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(29);
    std::vector<double> w{1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, SampleWithoutReplacementIsDistinct)
{
    Rng rng(31);
    const auto idx = rng.sampleWithoutReplacement(100, 30);
    EXPECT_EQ(idx.size(), 30u);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 30u);
    for (std::size_t i : idx)
        EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull)
{
    Rng rng(37);
    const auto idx = rng.sampleWithoutReplacement(10, 10);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementUniform)
{
    // Every element should appear with roughly equal frequency.
    Rng rng(41);
    std::vector<int> counts(20, 0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        for (std::size_t i : rng.sampleWithoutReplacement(20, 5))
            ++counts[i];
    }
    const double expected = trials * 5.0 / 20.0;
    for (int c : counts)
        EXPECT_NEAR(c, expected, expected * 0.1);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(43);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto w = v;
    rng.shuffle(w);
    std::sort(w.begin(), w.end());
    EXPECT_EQ(v, w);
}

TEST(Rng, ForkStreamsAreIndependent)
{
    Rng parent(47);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng p1(51), p2(51);
    Rng a = p1.fork(9);
    Rng b = p2.fork(9);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkIndependentOfParentDrawCount)
{
    Rng p1(53), p2(53);
    p2.next();
    p2.next();
    // fork() depends only on the seed and stream id.
    Rng a = p1.fork(4);
    Rng b = p2.fork(4);
    EXPECT_EQ(a.next(), b.next());
}

/** Property sweep: uniformInt stays in bounds over many ranges. */
class RngRangeTest : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(RngRangeTest, UniformIntInBounds)
{
    const std::int64_t hi = GetParam();
    Rng rng(static_cast<std::uint64_t>(hi) * 2654435761u);
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = rng.uniformInt(-hi, hi);
        EXPECT_GE(v, -hi);
        EXPECT_LE(v, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(1, 2, 7, 100, 12345,
                                           1000000007LL));

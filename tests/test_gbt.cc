/**
 * @file
 * Unit tests for the gradient-boosted trees learner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/gbt.hh"
#include "ml/metrics.hh"
#include "util/rng.hh"

using namespace gcm::ml;
using gcm::Rng;

namespace
{

/** Dataset from a scalar function with optional noise. */
Dataset
functionDataset(std::size_t n, double (*f)(double), double noise,
                std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds(1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.uniform(-3.0, 3.0);
        ds.addRow({static_cast<float>(x)},
                  f(x) + noise * rng.normal());
    }
    return ds;
}

double square(double x) { return x * x; }
double step(double x) { return x > 0.5 ? 5.0 : -5.0; }

} // namespace

TEST(Gbt, FitsStepFunctionExactly)
{
    const auto train = functionDataset(500, step, 0.0, 1);
    GradientBoostedTrees model;
    model.train(train);
    const auto test = functionDataset(100, step, 0.0, 2);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.99);
}

TEST(Gbt, FitsSmoothFunction)
{
    const auto train = functionDataset(2000, square, 0.05, 3);
    GradientBoostedTrees model;
    model.train(train);
    const auto test = functionDataset(300, square, 0.0, 4);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.97);
}

TEST(Gbt, BaseScoreIsLabelMean)
{
    Dataset ds(1);
    ds.addRow({0.0f}, 2.0);
    ds.addRow({1.0f}, 4.0);
    GradientBoostedTrees model;
    model.train(ds);
    EXPECT_DOUBLE_EQ(model.baseScore(), 3.0);
}

TEST(Gbt, TrainsRequestedNumberOfTrees)
{
    GbtParams p;
    p.n_estimators = 17;
    const auto train = functionDataset(100, square, 0.1, 5);
    GradientBoostedTrees model(p);
    model.train(train);
    EXPECT_EQ(model.numTrees(), 17u);
}

TEST(Gbt, DeterministicForSeed)
{
    const auto train = functionDataset(300, square, 0.1, 6);
    const auto test = functionDataset(50, square, 0.0, 7);
    GbtParams p;
    p.subsample = 0.8;
    GradientBoostedTrees a(p), b(p);
    a.train(train);
    b.train(train);
    EXPECT_EQ(a.predict(test), b.predict(test));
}

TEST(Gbt, MultiFeatureSelectsInformativeFeature)
{
    Rng rng(8);
    Dataset ds(3);
    for (int i = 0; i < 800; ++i) {
        const double x = rng.uniform(-1, 1);
        // Features 0 and 2 are noise; feature 1 carries the signal.
        ds.addRow({static_cast<float>(rng.normal()),
                   static_cast<float>(x),
                   static_cast<float>(rng.normal())},
                  4.0 * x);
    }
    GradientBoostedTrees model;
    model.train(ds);
    const auto &imp = model.featureImportance();
    EXPECT_GT(imp[1], 10.0 * std::max(imp[0], imp[2]));
}

TEST(Gbt, EvalHistoryImprovesOnHeldOut)
{
    const auto train = functionDataset(1500, square, 0.05, 9);
    const auto eval = functionDataset(300, square, 0.05, 10);
    GradientBoostedTrees model;
    model.train(train, eval);
    const auto &hist = model.evalHistory();
    ASSERT_EQ(hist.size(), model.params().n_estimators);
    EXPECT_LT(hist.back(), 0.5 * hist.front());
}

TEST(Gbt, PredictBeforeTrainAborts)
{
    GradientBoostedTrees model;
    float x = 0.0f;
    EXPECT_DEATH((void)model.predictRow(&x), "predict before train");
}

TEST(Gbt, ConstantTargetPredictsConstant)
{
    Dataset ds(1);
    for (int i = 0; i < 20; ++i)
        ds.addRow({static_cast<float>(i)}, 7.5);
    GradientBoostedTrees model;
    model.train(ds);
    const float x = 3.0f;
    EXPECT_NEAR(model.predictRow(&x), 7.5, 1e-9);
}

TEST(Gbt, GammaPrunesWeakSplits)
{
    // With a huge minimum gain requirement nothing should split, so
    // predictions collapse to the base score.
    const auto train = functionDataset(200, square, 0.0, 11);
    GbtParams p;
    p.gamma = 1e12;
    GradientBoostedTrees model(p);
    model.train(train);
    const float x = 2.0f;
    EXPECT_NEAR(model.predictRow(&x), model.baseScore(), 1e-9);
}

TEST(Gbt, SubsampleStillLearns)
{
    GbtParams p;
    p.subsample = 0.5;
    const auto train = functionDataset(2000, square, 0.05, 12);
    GradientBoostedTrees model(p);
    model.train(train);
    const auto test = functionDataset(200, square, 0.0, 13);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.9);
}

/** Learning rate sweep: the paper's 0.1 setting must be stable. */
class GbtLrTest : public ::testing::TestWithParam<double>
{};

TEST_P(GbtLrTest, ConvergesAcrossLearningRates)
{
    GbtParams p;
    p.learning_rate = GetParam();
    const auto train = functionDataset(1000, step, 0.0, 14);
    GradientBoostedTrees model(p);
    model.train(train);
    const auto test = functionDataset(100, step, 0.0, 15);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.95);
}

INSTANTIATE_TEST_SUITE_P(LearningRates, GbtLrTest,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5));

/** Depth sweep: deeper trees should not hurt a simple target. */
class GbtDepthTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(GbtDepthTest, FitsAcrossDepths)
{
    GbtParams p;
    p.max_depth = GetParam();
    const auto train = functionDataset(1000, square, 0.05, 16);
    GradientBoostedTrees model(p);
    model.train(train);
    const auto test = functionDataset(200, square, 0.0, 17);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Depths, GbtDepthTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

/**
 * @file
 * Tests for the graph verifier and the lint-pass registry: each class
 * of hand-corrupted graph must produce its specific diagnostic, and
 * the entire zoo plus a generated suite must verify clean.
 */

#include <gtest/gtest.h>

#include <functional>

#include "dnn/analysis.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "dnn/serialize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"
#include "verify/lint.hh"
#include "verify/verifier.hh"

using namespace gcm;
using namespace gcm::dnn;
using namespace gcm::verify;

namespace
{

/** A small valid network to corrupt. */
Graph
makeCleanGraph()
{
    GraphBuilder b("clean", TensorShape{1, 16, 16, 3});
    NodeId x = b.conv2d(b.input(), 16, 3, 1, 1);
    x = b.relu(x);
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, 10);
    x = b.softmax(x);
    return b.build();
}

/** Rebuild a graph from mutated nodes, bypassing all validation. */
Graph
corrupt(const Graph &g, const std::function<void(std::vector<Node> &)> &fn)
{
    std::vector<Node> nodes = g.nodes();
    fn(nodes);
    return Graph(g.name(), std::move(nodes), g.precision());
}

/** True when the report holds a finding matching all three fields. */
bool
hasDiag(const VerifyReport &report, Severity severity,
        const std::string &pass, const std::string &substring)
{
    for (const auto &d : report.diagnostics()) {
        if (d.severity == severity && d.pass == pass
            && d.message.find(substring) != std::string::npos) {
            return true;
        }
    }
    return false;
}

} // namespace

TEST(GraphVerifier, CleanGraphHasNoDiagnostics)
{
    const VerifyReport report = verifyGraph(makeCleanGraph());
    EXPECT_TRUE(report.empty()) << report.str();
}

TEST(GraphVerifier, DetectsCycle)
{
    // %1 and %2 feed each other: a true cycle, not just bad ordering.
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[1].inputs = {2};
        nodes[2].inputs = {1};
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(hasDiag(report, Severity::Error, "structure", "cycle"))
        << report.str();
}

TEST(GraphVerifier, DetectsDanglingInput)
{
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[2].inputs = {99};
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(
        hasDiag(report, Severity::Error, "structure", "dangling"))
        << report.str();
}

TEST(GraphVerifier, DetectsWrongArity)
{
    // Softmax (unary) handed two inputs.
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes.back().inputs = {2, 3};
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(hasDiag(report, Severity::Error, "structure",
                        "expects 1 input"))
        << report.str();
}

TEST(GraphVerifier, DetectsStaleShape)
{
    // Claim the conv produces 32 channels while its params say 16.
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[1].shape.c = 32;
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(hasDiag(report, Severity::Error, "shape", "stale"))
        << report.str();
}

TEST(GraphVerifier, DetectsNonTopologicalEdge)
{
    // Reroute so %2 consumes %3 while %3 consumes %1: the graph is
    // still acyclic, just stored in a non-topological order.
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[2].inputs = {3};
        nodes[3].inputs = {1};
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(hasDiag(report, Severity::Error, "structure",
                        "non-topological"))
        << report.str();
    EXPECT_FALSE(hasDiag(report, Severity::Error, "structure", "cycle"))
        << report.str();
}

TEST(GraphVerifier, DetectsIdMismatch)
{
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[3].id = 7;
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(hasDiag(report, Severity::Error, "structure",
                        "does not match position"))
        << report.str();
}

TEST(GraphVerifier, DetectsInvalidOpKindValue)
{
    // Out-of-enum kind, e.g. from a corrupted serialized stream; the
    // verifier must diagnose it without tripping any internal assert.
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[2].kind = static_cast<OpKind>(99);
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(hasDiag(report, Severity::Error, "structure",
                        "invalid operator kind"))
        << report.str();
}

TEST(GraphVerifier, FlagsDeadNodeAsWarning)
{
    // Splice a ReLU nobody consumes in front of the output node.
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        Node out = nodes.back(); // Softmax, consumes node 4
        nodes.pop_back();
        Node dead;
        dead.id = static_cast<NodeId>(nodes.size());
        dead.kind = OpKind::ReLU;
        dead.inputs = {1};
        dead.shape = nodes[1].shape;
        nodes.push_back(std::move(dead));
        out.id = static_cast<NodeId>(nodes.size());
        nodes.push_back(std::move(out));
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(hasDiag(report, Severity::Warning, "dead-code",
                        "unreachable"))
        << report.str();
    EXPECT_FALSE(report.hasErrors()) << report.str();
}

TEST(GraphVerifier, FlagsBatchNormInInt8Graph)
{
    const Graph fp32 = makeCleanGraph();
    const Graph g =
        Graph(fp32.name(), std::vector<Node>(fp32.nodes()),
              Precision::Int8);
    // makeCleanGraph has no BatchNorm; add the precision violation.
    const Graph bad = corrupt(g, [](auto &nodes) {
        nodes[2].kind = OpKind::BatchNorm;
    });
    const VerifyReport report = verifyGraph(bad);
    EXPECT_TRUE(
        hasDiag(report, Severity::Error, "precision", "BatchNorm"))
        << report.str();
}

TEST(GraphVerifier, FlagsFusedActivationOnNonFusableOp)
{
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[2].params.fused_activation = FusedActivation::ReLU;
    });
    const VerifyReport report = verifyGraph(g);
    EXPECT_TRUE(
        hasDiag(report, Severity::Error, "precision", "non-fusable"))
        << report.str();
}

TEST(GraphVerifier, OrThrowRaisesGcmErrorWithContext)
{
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[2].inputs = {99};
    });
    try {
        verifyGraphOrThrow(g, "test-producer");
        FAIL() << "expected GcmError";
    } catch (const GcmError &e) {
        EXPECT_NE(std::string(e.what()).find("test-producer"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("dangling"),
                  std::string::npos);
    }
}

TEST(GraphVerifier, OrThrowPassesWarnings)
{
    // fp32 fused activation is only a Warning; must not throw.
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        nodes[1].params.fused_activation = FusedActivation::ReLU;
    });
    EXPECT_NO_THROW(verifyGraphOrThrow(g, "test-producer"));
}

TEST(LintRegistry, BuiltinPassesRegistered)
{
    auto &reg = LintRegistry::instance();
    EXPECT_NE(reg.find("flops-range"), nullptr);
    EXPECT_NE(reg.find("se-reduction"), nullptr);
    EXPECT_NE(reg.find("encoder-range"), nullptr);
    EXPECT_EQ(reg.find("no-such-pass"), nullptr);
}

TEST(LintRegistry, RejectsDuplicateRegistration)
{
    EXPECT_THROW(LintRegistry::instance().registerPass(
                     "flops-range", "dup", [](const Graph &,
                                              VerifyReport &) {}),
                 GcmError);
}

TEST(LintRegistry, UnknownPassNameThrows)
{
    EXPECT_THROW(
        LintRegistry::instance().run(makeCleanGraph(), {"nope"}),
        GcmError);
}

TEST(LintRegistry, CustomPassRuns)
{
    auto &reg = LintRegistry::instance();
    if (reg.find("test-custom") == nullptr) {
        reg.registerPass("test-custom", "always warns",
                         [](const Graph &, VerifyReport &r) {
                             r.add(Severity::Note, kNoNode,
                                   "test-custom", "ran");
                         });
    }
    const VerifyReport report =
        reg.run(makeCleanGraph(), {"test-custom"});
    EXPECT_TRUE(hasDiag(report, Severity::Note, "test-custom", "ran"));
}

TEST(Lint, FlopsRangeFlagsTinyNetwork)
{
    // makeCleanGraph is ~0.01 MMACs, far below the Fig. 2 span.
    ASSERT_LT(megaMacs(makeCleanGraph()), kLintMinMegaMacs);
    const VerifyReport report = LintRegistry::instance().run(
        makeCleanGraph(), {"flops-range"});
    EXPECT_TRUE(hasDiag(report, Severity::Warning, "flops-range",
                        "outside the characterized range"))
        << report.str();
}

TEST(Lint, SeReductionFlagsExpandingSqueeze)
{
    // Hand-build an SE block whose "squeeze" FC widens 16 -> 64.
    GraphBuilder b("bad-se", TensorShape{1, 8, 8, 16});
    NodeId x = b.conv2d(b.input(), 16, 3, 1, 1);
    NodeId g = b.globalAvgPool(x);
    NodeId f1 = b.fullyConnected(g, 64);
    NodeId a1 = b.relu(f1);
    NodeId f2 = b.fullyConnected(a1, 16);
    NodeId a2 = b.sigmoid(f2);
    b.mul(x, a2);
    const Graph graph = b.build();
    const VerifyReport report =
        LintRegistry::instance().run(graph, {"se-reduction"});
    EXPECT_TRUE(hasDiag(report, Severity::Warning, "se-reduction",
                        "reduction ratio below 1"))
        << report.str();
}

TEST(Lint, SeReductionAcceptsBuilderBlocks)
{
    GraphBuilder b("good-se", TensorShape{1, 8, 8, 32});
    NodeId x = b.conv2d(b.input(), 32, 3, 1, 1);
    x = b.squeezeExcite(x);
    const Graph graph = b.build();
    const VerifyReport report =
        LintRegistry::instance().run(graph, {"se-reduction"});
    EXPECT_TRUE(report.empty()) << report.str();
}

TEST(Lint, EncoderRangeFlagsOverflowingFeature)
{
    const Graph g = corrupt(makeCleanGraph(), [](auto &nodes) {
        // 2^25 output features would lose precision as a float.
        nodes[4].params.out_channels = 1 << 25;
        nodes[4].shape.c = 1 << 25;
        nodes[5].shape.c = 1 << 25;
    });
    const VerifyReport report =
        LintRegistry::instance().run(g, {"encoder-range"});
    EXPECT_TRUE(hasDiag(report, Severity::Warning, "encoder-range",
                        "exceeds exact float range"))
        << report.str();
}

TEST(VerifySweep, EntireZooVerifiesClean)
{
    for (const auto &name : zooModelNames()) {
        const Graph g = buildZooModel(name);
        VerifyReport report = verifyGraph(g);
        report.merge(lintGraph(g));
        EXPECT_TRUE(report.count(Severity::Error) == 0
                    && report.count(Severity::Warning) == 0)
            << name << ":\n"
            << report.str();

        const Graph q = quantize(g);
        VerifyReport qreport = verifyGraph(q);
        qreport.merge(lintGraph(q));
        EXPECT_TRUE(qreport.count(Severity::Error) == 0
                    && qreport.count(Severity::Warning) == 0)
            << name << " (int8):\n"
            << qreport.str();
    }
}

TEST(VerifySweep, ExtendedZooVerifiesClean)
{
    for (const auto &name : extendedZooModelNames()) {
        const Graph g = buildZooModel(name);
        VerifyReport report = verifyGraph(g);
        report.merge(lintGraph(g));
        EXPECT_TRUE(report.count(Severity::Error) == 0
                    && report.count(Severity::Warning) == 0)
            << name << ":\n"
            << report.str();
    }
}

TEST(VerifySweep, HundredGeneratedNetworksVerifyClean)
{
    RandomNetworkGenerator gen(SearchSpace{}, 2020);
    const auto suite = gen.generateSuite(100, "sweep");
    ASSERT_EQ(suite.size(), 100u);
    for (const auto &g : suite) {
        VerifyReport report = verifyGraph(g);
        report.merge(lintGraph(g));
        EXPECT_TRUE(report.count(Severity::Error) == 0
                    && report.count(Severity::Warning) == 0)
            << g.name() << ":\n"
            << report.str();
    }
}

TEST(DeserializeHardening, RejectsOutOfRangeInputId)
{
    const std::string text = "gcm-graph v1\n"
                             "name t\n"
                             "precision fp32\n"
                             "nodes 2\n"
                             "node 0 Input k=0 s=1 p=0 oc=0 g=1 act=0 "
                             "in=- shape=1,8,8,3\n"
                             "node 1 ReLU k=0 s=1 p=0 oc=0 g=1 act=0 "
                             "in=7 shape=1,8,8,3\n";
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(DeserializeHardening, RejectsUnknownOpKind)
{
    const std::string text = "gcm-graph v1\n"
                             "name t\n"
                             "precision fp32\n"
                             "nodes 2\n"
                             "node 0 Input k=0 s=1 p=0 oc=0 g=1 act=0 "
                             "in=- shape=1,8,8,3\n"
                             "node 1 Gelu k=0 s=1 p=0 oc=0 g=1 act=0 "
                             "in=0 shape=1,8,8,3\n";
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(DeserializeHardening, RejectsNonIntegerField)
{
    const std::string text = "gcm-graph v1\n"
                             "name t\n"
                             "precision fp32\n"
                             "nodes 2\n"
                             "node 0 Input k=0 s=1 p=0 oc=0 g=1 act=0 "
                             "in=- shape=1,8,8,3\n"
                             "node 1 ReLU k=3x s=1 p=0 oc=0 g=1 act=0 "
                             "in=0 shape=1,8,8,3\n";
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(DeserializeHardening, RejectsAbsurdNodeCount)
{
    const std::string text = "gcm-graph v1\n"
                             "name t\n"
                             "precision fp32\n"
                             "nodes 99999999999\n";
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(DeserializeHardening, RejectsStaleShapeInStream)
{
    // Structurally parseable, but the ReLU claims a different shape
    // than its producer: only full verification catches this.
    const std::string text = "gcm-graph v1\n"
                             "name t\n"
                             "precision fp32\n"
                             "nodes 2\n"
                             "node 0 Input k=0 s=1 p=0 oc=0 g=1 act=0 "
                             "in=- shape=1,8,8,3\n"
                             "node 1 ReLU k=0 s=1 p=0 oc=0 g=1 act=0 "
                             "in=0 shape=1,4,4,3\n";
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(DeserializeHardening, RoundTripStillWorks)
{
    const Graph g = makeCleanGraph();
    const Graph back = graphFromText(graphToText(g));
    EXPECT_EQ(back.numNodes(), g.numNodes());
    EXPECT_TRUE(verifyGraph(back).empty());
}

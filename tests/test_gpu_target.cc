/**
 * @file
 * Unit tests for the GPU-delegate execution target extension.
 */

#include <gtest/gtest.h>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "sim/campaign.hh"
#include "util/error.hh"

using namespace gcm;
using namespace gcm::sim;

namespace
{

const DeviceDatabase &
fleet()
{
    static const DeviceDatabase db = DeviceDatabase::standard();
    return db;
}

dnn::Graph
net()
{
    static const dnn::Graph g =
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0"));
    return g;
}

DeviceRuntime
runtimeFor(const DeviceSpec &d, std::uint64_t seed = 5)
{
    return DeviceRuntime(d, fleet().chipsetOf(d), LatencyModel{}, seed);
}

} // namespace

TEST(GpuTarget, SomeChipsetsHaveNoDelegate)
{
    std::size_t with = 0, without = 0;
    for (const auto &c : chipsetTable())
        (c.gpu.supported() ? with : without) += 1;
    EXPECT_GT(with, 20u);
    EXPECT_GT(without, 3u); // budget A53 SoCs et al.
}

TEST(GpuTarget, UnsupportedDelegateThrows)
{
    for (const auto &d : fleet().devices()) {
        auto rt = runtimeFor(d);
        if (rt.gpuDelegateStatus() != GpuDelegateStatus::Unsupported)
            continue;
        EXPECT_THROW(
            (void)rt.measure(net(), 3, ExecutionTarget::GpuDelegate),
            GcmError);
        return;
    }
    FAIL() << "no unsupported-delegate device in the fleet";
}

TEST(GpuTarget, DelegateStatusIsDeterministicPerDevice)
{
    for (const auto &d : fleet().devices()) {
        auto a = runtimeFor(d);
        auto b = runtimeFor(d);
        EXPECT_EQ(a.gpuDelegateStatus(), b.gpuDelegateStatus());
    }
}

TEST(GpuTarget, FlagshipGpuBeatsItsOwnCpu)
{
    // On a big-GPU flagship, the delegate should outrun the single
    // CPU core for a conv-heavy network.
    const auto &d = fleet().byName("Mi-9"); // Snapdragon 855
    const LatencyModel model;
    const auto &cs = fleet().chipsetOf(d);
    const double cpu = model.graphLatencyMs(net(), d, cs);
    const double gpu = model.graphLatencyMs(
        net(), d, cs, ExecutionTarget::GpuDelegate);
    EXPECT_LT(gpu, cpu);
}

TEST(GpuTarget, GpuHasHigherFixedOverhead)
{
    // Tiny network: the delegate's launch overheads dominate and the
    // CPU wins — the classic small-model crossover.
    dnn::GraphBuilder b("tiny", dnn::TensorShape{1, 32, 32, 3});
    b.softmax(b.fullyConnected(b.conv2d(b.input(), 8, 3, 1, 1), 10));
    const dnn::Graph tiny = dnn::quantize(b.build());
    const auto &d = fleet().byName("Mi-9");
    const LatencyModel model;
    const auto &cs = fleet().chipsetOf(d);
    EXPECT_GT(model.graphLatencyMs(tiny, d, cs,
                                   ExecutionTarget::GpuDelegate),
              model.graphLatencyMs(tiny, d, cs));
}

TEST(GpuTarget, FlakyDevicesProducePathologicalLatency)
{
    const LatencyModel model;
    for (const auto &d : fleet().devices()) {
        auto rt = runtimeFor(d);
        if (rt.gpuDelegateStatus() != GpuDelegateStatus::Flaky)
            continue;
        const auto &cs = fleet().chipsetOf(d);
        const double clean = model.graphLatencyMs(
            net(), d, cs, ExecutionTarget::GpuDelegate);
        const auto res =
            rt.measure(net(), 5, ExecutionTarget::GpuDelegate);
        EXPECT_GT(res.mean_ms, 2.0 * clean);
        return;
    }
    GTEST_SKIP() << "no flaky-delegate device in this fleet seed";
}

TEST(GpuTarget, CampaignSkipsUnreliableDevices)
{
    CampaignConfig cfg;
    cfg.target = ExecutionTarget::GpuDelegate;
    cfg.runs_per_network = 2;
    CharacterizationCampaign campaign(fleet(), LatencyModel{}, cfg);
    const auto usable = campaign.measurableDevices();
    EXPECT_LT(usable.size(), fleet().size());
    EXPECT_GT(usable.size(), fleet().size() / 3);
    const auto repo =
        campaign.run({dnn::buildZooModel("squeezenet_1.1")});
    EXPECT_EQ(repo.size(), usable.size());
}

TEST(GpuTarget, CpuCampaignUnaffected)
{
    CampaignConfig cfg;
    cfg.runs_per_network = 2;
    CharacterizationCampaign campaign(fleet(), LatencyModel{}, cfg);
    EXPECT_EQ(campaign.measurableDevices().size(), fleet().size());
}

TEST(GpuTarget, TargetNames)
{
    EXPECT_STREQ(executionTargetName(ExecutionTarget::BigCore),
                 "big-core CPU");
    EXPECT_STREQ(executionTargetName(ExecutionTarget::GpuDelegate),
                 "GPU delegate");
}

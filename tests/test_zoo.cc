/**
 * @file
 * Unit tests for the 18-network model zoo. MAC counts are checked
 * against the published figures for the well-documented models.
 */

#include <gtest/gtest.h>

#include "dnn/analysis.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"

using namespace gcm::dnn;
using gcm::GcmError;

TEST(Zoo, HasEighteenModels)
{
    EXPECT_EQ(zooModelNames().size(), 18u);
    EXPECT_EQ(buildZoo().size(), 18u);
}

TEST(Zoo, NamesMatchBuiltGraphs)
{
    for (const auto &name : zooModelNames())
        EXPECT_EQ(buildZooModel(name).name(), name);
}

TEST(Zoo, UnknownModelThrows)
{
    EXPECT_THROW(buildZooModel("resnet_50"), GcmError);
}

TEST(Zoo, AllModelsValidateAndQuantize)
{
    for (const auto &g : buildZoo()) {
        EXPECT_NO_THROW(g.validate());
        const Graph q = quantize(g);
        EXPECT_NO_THROW(q.validate());
        EXPECT_EQ(totalMacs(g), totalMacs(q));
    }
}

TEST(Zoo, MobileNetV1MacsMatchPaper)
{
    // Howard et al. report 569M MACs for MobileNetV1 1.0 @ 224.
    EXPECT_NEAR(megaMacs(buildZooModel("mobilenet_v1_1.0")), 569.0, 10.0);
}

TEST(Zoo, MobileNetV2MacsMatchPaper)
{
    // Sandler et al. report 300M MACs for MobileNetV2 1.0 @ 224.
    EXPECT_NEAR(megaMacs(buildZooModel("mobilenet_v2_1.0")), 300.0, 10.0);
}

TEST(Zoo, MobileNetV3MacsMatchPaper)
{
    // Howard et al. report 219M (large) and 56M (small) MAdds.
    EXPECT_NEAR(megaMacs(buildZooModel("mobilenet_v3_large")), 219.0,
                15.0);
    EXPECT_NEAR(megaMacs(buildZooModel("mobilenet_v3_small")), 56.0, 8.0);
}

TEST(Zoo, SqueezeNetElevenIsLighterThanTen)
{
    // SqueezeNet 1.1 is advertised as ~2.4x cheaper than 1.0.
    const double m10 = megaMacs(buildZooModel("squeezenet_1.0"));
    const double m11 = megaMacs(buildZooModel("squeezenet_1.1"));
    EXPECT_GT(m10, 2.0 * m11);
}

TEST(Zoo, WidthMultipliersOrderMacs)
{
    const double w50 = megaMacs(buildZooModel("mobilenet_v1_0.5"));
    const double w75 = megaMacs(buildZooModel("mobilenet_v1_0.75"));
    const double w100 = megaMacs(buildZooModel("mobilenet_v1_1.0"));
    EXPECT_LT(w50, w75);
    EXPECT_LT(w75, w100);
    const double v075 = megaMacs(buildZooModel("mobilenet_v2_0.75"));
    const double v140 = megaMacs(buildZooModel("mobilenet_v2_1.4"));
    EXPECT_LT(v075, megaMacs(buildZooModel("mobilenet_v2_1.0")));
    EXPECT_GT(v140, megaMacs(buildZooModel("mobilenet_v2_1.0")));
}

TEST(Zoo, MnasNetInExpectedRange)
{
    // MnasNet-A1/B1 are ~312M/315M MACs.
    EXPECT_NEAR(megaMacs(buildZooModel("mnasnet_a1")), 312.0, 20.0);
    EXPECT_NEAR(megaMacs(buildZooModel("mnasnet_b1")), 315.0, 20.0);
}

TEST(Zoo, SeNetworksContainSigmoidAndMul)
{
    const Graph v3 = buildZooModel("mobilenet_v3_large");
    EXPECT_GT(v3.countKind(OpKind::Sigmoid), 0u);
    EXPECT_GT(v3.countKind(OpKind::Mul), 0u);
}

TEST(Zoo, SqueezeNetUsesConcat)
{
    EXPECT_EQ(buildZooModel("squeezenet_1.0").countKind(OpKind::Concat),
              8u);
}

TEST(Zoo, AllModelsTakeImageNetInput)
{
    for (const auto &g : buildZoo())
        EXPECT_EQ(g.inputShape(), (TensorShape{1, 224, 224, 3}));
}

TEST(Zoo, ClassifierOutputs1000Classes)
{
    for (const auto &g : buildZoo())
        EXPECT_EQ(g.outputNode().shape.c, 1000);
}

/**
 * @file
 * Shared fixtures for the core-module tests: a reduced-size
 * ExperimentContext (fewer networks/devices/runs) that builds in well
 * under a second while exercising the same code paths as the full
 * 118x105 dataset.
 */

#ifndef GCM_TESTS_TESTING_SUPPORT_HH
#define GCM_TESTS_TESTING_SUPPORT_HH

#include "core/experiment_context.hh"

namespace gcm::gcmtest
{

/** 18 zoo + 12 random networks on 24 devices, 5 runs each. */
inline const core::ExperimentContext &
smallContext()
{
    static const core::ExperimentContext ctx = [] {
        core::ExperimentConfig cfg;
        cfg.num_random_networks = 12;
        cfg.num_devices = 24;
        cfg.campaign.runs_per_network = 5;
        return core::ExperimentContext::build(cfg);
    }();
    return ctx;
}

/** Faster booster settings for tests (fewer, shallower trees). */
inline ml::GbtParams
fastGbt()
{
    ml::GbtParams p;
    p.n_estimators = 40;
    return p;
}

} // namespace gcm::gcmtest

#endif // GCM_TESTS_TESTING_SUPPORT_HH

/**
 * @file
 * Unit tests for signature-set selection (RS / MIS / SCCS).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/signature.hh"
#include "util/error.hh"
#include "util/rng.hh"

using namespace gcm::core;
using gcm::GcmError;
using gcm::Rng;

namespace
{

bool
allDistinct(const std::vector<std::size_t> &v)
{
    std::set<std::size_t> s(v.begin(), v.end());
    return s.size() == v.size();
}

/**
 * Synthetic latency matrix with redundancy structure: `groups`
 * clusters of networks; members of a cluster are near-duplicates
 * (same device response + tiny noise), clusters are independent.
 */
std::vector<std::vector<double>>
clusteredLatencies(std::size_t groups, std::size_t per_group,
                   std::size_t devices, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> base(groups);
    for (auto &row : base) {
        for (std::size_t d = 0; d < devices; ++d)
            row.push_back(std::exp(rng.uniform(2.0, 6.0)));
    }
    std::vector<std::vector<double>> nets;
    for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t m = 0; m < per_group; ++m) {
            std::vector<double> row = base[g];
            for (auto &v : row)
                v *= rng.uniform(0.99, 1.01);
            nets.push_back(std::move(row));
        }
    }
    return nets;
}

std::size_t
groupOf(std::size_t net_idx, std::size_t per_group)
{
    return net_idx / per_group;
}

} // namespace

TEST(SignatureRs, SizeAndDistinctness)
{
    const auto sig = selectRandomSignature(118, 10, 42);
    EXPECT_EQ(sig.size(), 10u);
    EXPECT_TRUE(allDistinct(sig));
    for (std::size_t s : sig)
        EXPECT_LT(s, 118u);
}

TEST(SignatureRs, DeterministicPerSeed)
{
    EXPECT_EQ(selectRandomSignature(50, 5, 7),
              selectRandomSignature(50, 5, 7));
    EXPECT_NE(selectRandomSignature(50, 5, 7),
              selectRandomSignature(50, 5, 8));
}

TEST(SignatureMis, PicksAcrossRedundancyGroups)
{
    // 5 groups of 6 near-identical networks: a 5-network signature
    // should touch all 5 groups (picking duplicates wastes MI).
    const auto lat = clusteredLatencies(5, 6, 40, 1);
    SignatureConfig cfg;
    const auto sig = selectMisSignature(lat, 5, cfg);
    EXPECT_TRUE(allDistinct(sig));
    std::set<std::size_t> groups;
    for (std::size_t s : sig)
        groups.insert(groupOf(s, 6));
    EXPECT_EQ(groups.size(), 5u);
}

TEST(SignatureMis, HistogramEstimatorAlsoSpreads)
{
    const auto lat = clusteredLatencies(4, 5, 60, 2);
    SignatureConfig cfg;
    cfg.mi_estimator = MiEstimatorKind::Histogram;
    const auto sig = selectMisSignature(lat, 4, cfg);
    std::set<std::size_t> groups;
    for (std::size_t s : sig)
        groups.insert(groupOf(s, 5));
    EXPECT_GE(groups.size(), 3u);
}

TEST(SignatureMis, PrefixProperty)
{
    const auto lat = clusteredLatencies(5, 4, 30, 3);
    SignatureConfig cfg;
    const auto big = selectMisSignature(lat, 8, cfg);
    const auto small = selectMisSignature(lat, 4, cfg);
    ASSERT_EQ(small.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(small[i], big[i]);
}

TEST(SignatureSccs, RemovesCorrelatedGroup)
{
    const auto lat = clusteredLatencies(5, 6, 40, 4);
    SignatureConfig cfg;
    cfg.sccs_gamma = 0.95;
    const auto sig = selectSccsSignature(lat, 5, cfg);
    EXPECT_TRUE(allDistinct(sig));
    std::set<std::size_t> groups;
    for (std::size_t s : sig)
        groups.insert(groupOf(s, 6));
    // Each pick removes its own highly-correlated group, so the five
    // picks should cover the five groups.
    EXPECT_EQ(groups.size(), 5u);
}

TEST(SignatureSccs, GammaRelaxationWhenExhausted)
{
    // 2 groups but 6 networks requested: the pool empties after two
    // picks and the documented gamma-relaxation path must kick in.
    const auto lat = clusteredLatencies(2, 4, 30, 5);
    SignatureConfig cfg;
    cfg.sccs_gamma = 0.9;
    const auto sig = selectSccsSignature(lat, 6, cfg);
    EXPECT_EQ(sig.size(), 6u);
    EXPECT_TRUE(allDistinct(sig));
}

TEST(Signature, DispatchMatchesDirectCalls)
{
    const auto lat = clusteredLatencies(4, 4, 30, 6);
    SignatureConfig cfg;
    cfg.size = 4;
    cfg.seed = 11;
    EXPECT_EQ(selectSignature(lat, SignatureMethod::RandomSampling, cfg),
              selectRandomSignature(lat.size(), 4, 11));
    EXPECT_EQ(
        selectSignature(lat, SignatureMethod::MutualInformation, cfg),
        selectMisSignature(lat, 4, cfg));
    EXPECT_EQ(
        selectSignature(lat, SignatureMethod::SpearmanCorrelation, cfg),
        selectSccsSignature(lat, 4, cfg));
}

TEST(Signature, MethodNames)
{
    EXPECT_STREQ(signatureMethodName(SignatureMethod::RandomSampling),
                 "RS");
    EXPECT_STREQ(signatureMethodName(SignatureMethod::MutualInformation),
                 "MIS");
    EXPECT_STREQ(
        signatureMethodName(SignatureMethod::SpearmanCorrelation),
        "SCCS");
}

TEST(Signature, OversizedRequestAborts)
{
    const auto lat = clusteredLatencies(2, 2, 10, 7);
    EXPECT_DEATH((void)selectRandomSignature(4, 5, 1), "larger");
    SignatureConfig cfg;
    EXPECT_DEATH((void)selectMisSignature(lat, 5, cfg), "larger");
}

TEST(Signature, NonPositiveLatencyAborts)
{
    std::vector<std::vector<double>> lat = {{1.0, 2.0}, {0.0, 3.0}};
    SignatureConfig cfg;
    EXPECT_DEATH((void)selectMisSignature(lat, 1, cfg), "non-positive");
}

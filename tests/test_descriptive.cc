/**
 * @file
 * Unit tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hh"

using namespace gcm::stats;

TEST(Descriptive, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({5}), 5.0);
}

TEST(Descriptive, VarianceUnbiased)
{
    // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
    EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, VarianceOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
}

TEST(Descriptive, StddevIsSqrtVariance)
{
    const std::vector<double> v{1, 2, 3, 10};
    EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(variance(v)));
}

TEST(Descriptive, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, QuantileInterpolates)
{
    const std::vector<double> v{0, 10};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Descriptive, QuantileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(Descriptive, SummaryFields)
{
    const Summary s = summarize({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 5);
    EXPECT_DOUBLE_EQ(s.median, 3);
    EXPECT_DOUBLE_EQ(s.q1, 2);
    EXPECT_DOUBLE_EQ(s.q3, 4);
    EXPECT_DOUBLE_EQ(s.mean, 3);
    EXPECT_EQ(s.count, 5u);
}

/** Quantiles are monotone in q for any data. */
class QuantileMonotone : public ::testing::TestWithParam<int>
{};

TEST_P(QuantileMonotone, MonotoneInQ)
{
    std::vector<double> v;
    // Deterministic pseudo-data per seed parameter.
    unsigned x = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
    for (int i = 0; i < 50; ++i) {
        x = x * 1664525u + 1013904223u;
        v.push_back(static_cast<double>(x % 1000) / 7.0);
    }
    double prev = quantile(v, 0.0);
    for (double q = 0.1; q <= 1.0; q += 0.1) {
        const double cur = quantile(v, q);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Range(1, 8));

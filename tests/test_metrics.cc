/**
 * @file
 * Unit tests for regression metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hh"

using namespace gcm::ml;

TEST(Metrics, R2PerfectPrediction)
{
    EXPECT_DOUBLE_EQ(r2Score({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(Metrics, R2MeanPredictionIsZero)
{
    EXPECT_NEAR(r2Score({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(Metrics, R2CanBeNegative)
{
    EXPECT_LT(r2Score({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(Metrics, R2KnownValue)
{
    // SS_res = 0.25 + 0.25 = 0.5, SS_tot = 2 -> R2 = 0.75.
    EXPECT_NEAR(r2Score({1, 2, 3}, {1.5, 2.0, 2.5}), 0.75, 1e-12);
}

TEST(Metrics, R2ZeroVarianceTargets)
{
    EXPECT_DOUBLE_EQ(r2Score({5, 5, 5}, {4, 5, 6}), 0.0);
}

TEST(Metrics, RmseKnownValue)
{
    EXPECT_NEAR(rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
}

TEST(Metrics, MaeKnownValue)
{
    EXPECT_DOUBLE_EQ(mae({1, 2}, {2, 0}), 1.5);
}

TEST(Metrics, MapeSkipsZeroTargets)
{
    // Only the second point counts: |(10-12)/10| = 20%.
    EXPECT_NEAR(mape({0, 10}, {5, 12}), 20.0, 1e-12);
}

TEST(Metrics, MapeAllZeroTargets)
{
    EXPECT_DOUBLE_EQ(mape({0, 0}, {1, 2}), 0.0);
}

/**
 * @file
 * Minimal recursive-descent JSON parser for tests that validate the
 * gcm-perf-report/v1 documents emitted by src/obs. Supports the full
 * JSON value grammar the emitter produces (objects, arrays, strings
 * with escapes, numbers, booleans, null); throws std::runtime_error
 * on malformed input so schema violations fail the test with a
 * position message.
 */

#ifndef GCM_TESTS_SUPPORT_JSON_HH
#define GCM_TESTS_SUPPORT_JSON_HH

#include <cctype>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace gcm::gcmtest
{

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    bool
    has(const std::string &key) const
    {
        return isObject() && object.count(key) > 0;
    }

    const JsonValue &
    at(const std::string &key) const
    {
        if (!has(key))
            throw std::runtime_error("json: missing key '" + key + "'");
        return object.at(key);
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        const JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at offset "
                                 + std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const std::string &lit)
    {
        if (text_.compare(pos_, lit.size(), lit) != 0)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f' || c == 'n')
            return parseKeyword();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            const JsonValue key = parseString();
            expect(':');
            v.object[key.str] = parseValue();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    const int code =
                        std::stoi(text_.substr(pos_, 4), nullptr, 16);
                    pos_ += 4;
                    // The emitter only escapes control chars.
                    c = static_cast<char>(code);
                    break;
                  }
                  default: fail("unknown escape");
                }
            }
            v.str.push_back(c);
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonValue
    parseKeyword()
    {
        skipWs();
        JsonValue v;
        if (consumeLiteral("true")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
        } else if (consumeLiteral("false")) {
            v.kind = JsonValue::Kind::Bool;
        } else if (consumeLiteral("null")) {
            v.kind = JsonValue::Kind::Null;
        } else {
            fail("unknown keyword");
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E')) {
            ++pos_;
        }
        if (start == pos_)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::size_t used = 0;
        const std::string token = text_.substr(start, pos_ - start);
        v.number = std::stod(token, &used);
        if (used != token.size())
            fail("malformed number '" + token + "'");
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

inline JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace gcm::gcmtest

#endif // GCM_TESTS_SUPPORT_JSON_HH

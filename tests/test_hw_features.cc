/**
 * @file
 * Unit tests for the static hardware encoder.
 */

#include <gtest/gtest.h>

#include "core/hw_features.hh"

using namespace gcm::core;
using namespace gcm::sim;

TEST(HwFeatures, WidthIsFamiliesPlusTwo)
{
    StaticHardwareEncoder enc;
    EXPECT_EQ(enc.numFeatures(), coreFamilyTable().size() + 2);
    EXPECT_EQ(enc.featureNames().size(), enc.numFeatures());
}

TEST(HwFeatures, OneHotMatchesCoreFamily)
{
    StaticHardwareEncoder enc;
    const auto fleet = DeviceDatabase::standard(1, 20);
    for (const auto &d : fleet.devices()) {
        const auto v = enc.encode(d, fleet);
        float sum = 0.0f;
        for (std::size_t i = 0; i < coreFamilyTable().size(); ++i)
            sum += v[i];
        EXPECT_FLOAT_EQ(sum, 1.0f);
        const auto family =
            static_cast<std::size_t>(fleet.chipsetOf(d).big_core);
        EXPECT_FLOAT_EQ(v[family], 1.0f);
    }
}

TEST(HwFeatures, FrequencyAndRamAppended)
{
    StaticHardwareEncoder enc;
    const auto fleet = DeviceDatabase::standard(1, 5);
    const auto &d = fleet.device(0);
    const auto v = enc.encode(d, fleet);
    EXPECT_FLOAT_EQ(v[coreFamilyTable().size()],
                    static_cast<float>(d.freq_ghz));
    EXPECT_FLOAT_EQ(v[coreFamilyTable().size() + 1],
                    static_cast<float>(d.ram_gb));
}

TEST(HwFeatures, NamesIncludeCpuPrefix)
{
    StaticHardwareEncoder enc;
    const auto names = enc.featureNames();
    EXPECT_EQ(names[0].rfind("cpu_is_", 0), 0u);
    EXPECT_EQ(names[names.size() - 2], "freq_ghz");
    EXPECT_EQ(names.back(), "ram_gb");
}

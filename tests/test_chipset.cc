/**
 * @file
 * Unit tests for the chipset database.
 */

#include <gtest/gtest.h>

#include "sim/chipset.hh"
#include "util/error.hh"

using namespace gcm::sim;
using gcm::GcmError;

TEST(Chipset, ThirtyEightChipsets)
{
    EXPECT_EQ(chipsetTable().size(), 38u);
}

TEST(Chipset, LookupByName)
{
    const std::size_t i = chipsetIndexByName("Snapdragon-855");
    EXPECT_EQ(chipsetTable()[i].vendor, "Qualcomm");
    EXPECT_EQ(coreFamily(chipsetTable()[i].big_core).name,
              "Kryo-485-Gold");
}

TEST(Chipset, UnknownNameThrows)
{
    EXPECT_THROW(chipsetIndexByName("Snapdragon-9000"), GcmError);
}

TEST(Chipset, NamesAreUnique)
{
    const auto &table = chipsetTable();
    for (std::size_t i = 0; i < table.size(); ++i) {
        for (std::size_t j = i + 1; j < table.size(); ++j)
            EXPECT_NE(table[i].name, table[j].name);
    }
}

TEST(Chipset, DramBandwidthOrdering)
{
    EXPECT_LT(dramBandwidthGBs(DramKind::Lpddr3),
              dramBandwidthGBs(DramKind::Lpddr4));
    EXPECT_LT(dramBandwidthGBs(DramKind::Lpddr4),
              dramBandwidthGBs(DramKind::Lpddr4x));
    EXPECT_LT(dramBandwidthGBs(DramKind::Lpddr4x),
              dramBandwidthGBs(DramKind::Lpddr5));
}

TEST(Chipset, DramKindNames)
{
    EXPECT_STREQ(dramKindName(DramKind::Lpddr3), "LPDDR3");
    EXPECT_STREQ(dramKindName(DramKind::Lpddr5), "LPDDR5");
}

TEST(Chipset, AllEntriesSane)
{
    for (const auto &c : chipsetTable()) {
        EXPECT_GT(c.max_freq_ghz, 1.0) << c.name;
        EXPECT_LT(c.max_freq_ghz, 3.5) << c.name;
        EXPECT_FALSE(c.ram_options_gb.empty()) << c.name;
        EXPECT_GT(c.popularity, 0.0) << c.name;
        EXPECT_NO_THROW((void)coreFamily(c.big_core)) << c.name;
    }
}

TEST(Chipset, RedmiNote5ProChipsetUsesKryo260)
{
    // The paper's Section V case study device is a Redmi Note 5 Pro
    // with a Kryo 260 Gold CPU (Snapdragon 636).
    const std::size_t i = chipsetIndexByName("Snapdragon-636");
    EXPECT_EQ(coreFamily(chipsetTable()[i].big_core).name,
              "Kryo-260-Gold");
}

TEST(Chipset, CoversMultipleVendors)
{
    std::size_t qc = 0, mtk = 0, sams = 0, hisi = 0;
    for (const auto &c : chipsetTable()) {
        if (c.vendor == "Qualcomm")
            ++qc;
        else if (c.vendor == "MediaTek")
            ++mtk;
        else if (c.vendor == "Samsung")
            ++sams;
        else if (c.vendor == "HiSilicon")
            ++hisi;
    }
    EXPECT_GT(qc, 10u);
    EXPECT_GT(mtk, 4u);
    EXPECT_GT(sams, 4u);
    EXPECT_GT(hisi, 3u);
}

/**
 * @file
 * Unit tests for the histogram regression-tree trainer (the weak
 * learner shared by GBT and RandomForest).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "ml/tree.hh"

using namespace gcm::ml;
using gcm::Rng;

namespace
{

/** Dataset with one feature and a step target at x = 0.5. */
Dataset
stepData()
{
    Dataset ds(1);
    for (int i = 0; i < 100; ++i) {
        const float x = static_cast<float>(i) / 100.0f;
        ds.addRow({x}, x > 0.5f ? 10.0 : -10.0);
    }
    return ds;
}

std::vector<std::uint32_t>
allRows(std::size_t n)
{
    std::vector<std::uint32_t> rows(n);
    std::iota(rows.begin(), rows.end(), std::uint32_t{0});
    return rows;
}

/** Gradients for fitting raw targets from a zero prediction. */
std::vector<float>
negLabels(const Dataset &ds)
{
    std::vector<float> g(ds.numRows());
    for (std::size_t i = 0; i < ds.numRows(); ++i)
        g[i] = static_cast<float>(-ds.label(i));
    return g;
}

} // namespace

TEST(TreeTrainer, FindsTheStepSplit)
{
    const auto ds = stepData();
    BinnedMatrix binned(ds, 64);
    TreeTrainConfig cfg;
    cfg.max_depth = 1;
    cfg.lambda = 0.0;
    const auto tree =
        trainTree(binned, allRows(ds.numRows()), negLabels(ds), cfg,
                  nullptr);
    ASSERT_EQ(tree.numNodes(), 3u);
    ASSERT_EQ(tree.numLeaves(), 2u);
    // Split lands near 0.5; leaves predict the two plateau values.
    const float lo = 0.2f, hi = 0.8f;
    EXPECT_NEAR(tree.predictRow(&lo), -10.0, 1e-6);
    EXPECT_NEAR(tree.predictRow(&hi), 10.0, 1e-6);
    EXPECT_GE(tree.nodes()[0].threshold, 0.4f);
    EXPECT_LE(tree.nodes()[0].threshold, 0.6f);
}

TEST(TreeTrainer, LeafValueIsRegularizedMean)
{
    // One constant feature -> no split possible -> root leaf.
    Dataset ds(1);
    for (int i = 0; i < 4; ++i)
        ds.addRow({1.0f}, 8.0);
    BinnedMatrix binned(ds, 8);
    TreeTrainConfig cfg;
    cfg.lambda = 4.0; // -G/(N + lambda) = 32/(4+4) = 4
    const auto tree =
        trainTree(binned, allRows(4), negLabels(ds), cfg, nullptr);
    EXPECT_EQ(tree.numLeaves(), 1u);
    const float x = 1.0f;
    EXPECT_NEAR(tree.predictRow(&x), 4.0, 1e-6);
}

TEST(TreeTrainer, MinChildWeightBlocksTinySplits)
{
    const auto ds = stepData();
    BinnedMatrix binned(ds, 64);
    TreeTrainConfig cfg;
    cfg.max_depth = 1;
    cfg.min_child_weight = 60.0; // no 60/40 split exists for the step
    const auto tree =
        trainTree(binned, allRows(ds.numRows()), negLabels(ds), cfg,
                  nullptr);
    EXPECT_EQ(tree.numLeaves(), 1u);
}

TEST(TreeTrainer, GammaPrunesLowGainSplits)
{
    const auto ds = stepData();
    BinnedMatrix binned(ds, 64);
    TreeTrainConfig cfg;
    cfg.max_depth = 3;
    cfg.gamma = 1e9;
    const auto tree =
        trainTree(binned, allRows(ds.numRows()), negLabels(ds), cfg,
                  nullptr);
    EXPECT_EQ(tree.numLeaves(), 1u);
}

TEST(TreeTrainer, DepthBoundRespected)
{
    Rng rng(3);
    Dataset ds(2);
    for (int i = 0; i < 500; ++i) {
        const float a = static_cast<float>(rng.uniform(-1, 1));
        const float b = static_cast<float>(rng.uniform(-1, 1));
        ds.addRow({a, b}, a * b);
    }
    BinnedMatrix binned(ds, 32);
    TreeTrainConfig cfg;
    cfg.max_depth = 4;
    const auto tree = trainTree(binned, allRows(ds.numRows()),
                                negLabels(ds), cfg, nullptr);
    EXPECT_LE(tree.numLeaves(), 16u); // 2^4
    EXPECT_GT(tree.numLeaves(), 2u);
}

TEST(TreeTrainer, GainAccountingMatchesInformativeFeature)
{
    Rng rng(5);
    Dataset ds(3);
    for (int i = 0; i < 400; ++i) {
        const float x = static_cast<float>(rng.uniform(-1, 1));
        ds.addRow({static_cast<float>(rng.normal()), x,
                   static_cast<float>(rng.normal())},
                  x > 0 ? 5.0 : -5.0);
    }
    BinnedMatrix binned(ds, 32);
    TreeTrainConfig cfg;
    cfg.max_depth = 2;
    std::vector<double> gain;
    (void)trainTree(binned, allRows(ds.numRows()), negLabels(ds), cfg,
                    nullptr, &gain);
    ASSERT_EQ(gain.size(), 3u);
    EXPECT_GT(gain[1], gain[0]);
    EXPECT_GT(gain[1], gain[2]);
}

TEST(TreeTrainer, BinnedAndRawPredictionsAgreeOnTrainingRows)
{
    Rng rng(7);
    Dataset ds(4);
    for (int i = 0; i < 300; ++i) {
        std::vector<float> row;
        for (int f = 0; f < 4; ++f)
            row.push_back(static_cast<float>(rng.uniform(-2, 2)));
        ds.addRow(row, row[0] + 2.0 * row[2]);
    }
    BinnedMatrix binned(ds, 32);
    TreeTrainConfig cfg;
    cfg.max_depth = 3;
    const auto tree = trainTree(binned, allRows(ds.numRows()),
                                negLabels(ds), cfg, nullptr);
    for (std::size_t i = 0; i < ds.numRows(); ++i) {
        EXPECT_DOUBLE_EQ(tree.predictRow(ds.row(i)),
                         tree.predictBinnedRow(binned, i));
    }
}

TEST(TreeTrainer, SubsetRowsOnlyUseThoseGradients)
{
    // Train on the left half of the step only: the tree never sees a
    // positive target, so it predicts the negative plateau everywhere.
    const auto ds = stepData();
    BinnedMatrix binned(ds, 64);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = 0; i < 50; ++i)
        rows.push_back(i);
    TreeTrainConfig cfg;
    cfg.lambda = 0.0;
    const auto tree = trainTree(binned, rows, negLabels(ds), cfg,
                                nullptr);
    const float hi = 0.9f;
    EXPECT_NEAR(tree.predictRow(&hi), -10.0, 1e-6);
}

/**
 * @file
 * Section III-C ablation — ML model comparison on the signature
 * representation: the paper states XGBoost outperformed a neural
 * baseline, random forests and k-nearest neighbours. Reproduced here
 * with GBT vs RandomForest vs kNN vs MLP vs ridge regression.
 *
 * kNN and the MLP are brute-force / iterative, so training rows are
 * subsampled (documented below); the GBT is evaluated on both the
 * full and the subsampled training set for a fair comparison.
 */

#include <chrono>
#include <cstdio>

#include "bench_support.hh"
#include "core/evaluation.hh"
#include "core/signature.hh"
#include "ml/gbt.hh"
#include "ml/knn.hh"
#include "ml/linear.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/random_forest.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace gcm;
using Clock = std::chrono::steady_clock;

namespace
{

/** Assemble (encoding ++ signature latencies) rows for a device set. */
ml::Dataset
buildDataset(const core::ExperimentContext &ctx,
             const core::EvaluationHarness &harness,
             const std::vector<std::size_t> &devices,
             const std::vector<std::size_t> &signature)
{
    const std::size_t net_f = ctx.encoder().numFeatures();
    std::vector<bool> is_sig(ctx.numNetworks(), false);
    for (std::size_t s : signature)
        is_sig[s] = true;
    ml::Dataset ds(net_f + signature.size());
    std::vector<float> row(net_f + signature.size());
    for (std::size_t d : devices) {
        for (std::size_t k = 0; k < signature.size(); ++k) {
            row[net_f + k] =
                static_cast<float>(ctx.latencyMs(d, signature[k]));
        }
        for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
            if (is_sig[n])
                continue;
            std::copy(harness.encodings()[n].begin(),
                      harness.encodings()[n].end(), row.begin());
            ds.addRow(row, ctx.latencyMs(d, n));
        }
    }
    return ds;
}

ml::Dataset
subsample(const ml::Dataset &ds, std::size_t target, std::uint64_t seed)
{
    if (ds.numRows() <= target) {
        std::vector<std::size_t> all(ds.numRows());
        for (std::size_t i = 0; i < all.size(); ++i)
            all[i] = i;
        return ds.subset(all);
    }
    Rng rng(seed);
    return ds.subset(rng.sampleWithoutReplacement(ds.numRows(), target));
}

template <typename Model>
std::pair<double, double>
fitAndScore(Model &model, const ml::Dataset &train,
            const ml::Dataset &test)
{
    const auto t0 = Clock::now();
    model.train(train);
    const auto t1 = Clock::now();
    const double r2 = ml::r2Score(test.labels(), model.predict(test));
    return {r2, std::chrono::duration<double>(t1 - t0).count()};
}

} // namespace

int
main()
{
    bench::banner("Ablation (Section III-C)",
                  "GBT vs RandomForest vs kNN vs MLP vs ridge");
    const auto ctx = bench::fullContext();
    core::EvaluationHarness harness(ctx);
    const auto split = core::splitDevices(ctx.fleet().size(), 0.3, 42);

    core::SignatureConfig sel;
    sel.size = 10;
    const auto signature = core::selectMisSignature(
        ctx.latencyMatrix(split.train), 10, sel);

    const auto train_full =
        buildDataset(ctx, harness, split.train, signature);
    const auto test_full =
        buildDataset(ctx, harness, split.test, signature);
    const auto train_small = subsample(train_full, 2500, 1);
    const auto test_small = subsample(test_full, 1000, 2);
    std::printf("full train rows: %zu, subsampled train rows: %zu "
                "(for kNN / MLP feasibility)\n\n",
                train_full.numRows(), train_small.numRows());

    TextTable t({"model", "train rows", "test R^2", "train time s"});

    {
        ml::GradientBoostedTrees gbt;
        const auto [r2, secs] = fitAndScore(gbt, train_full, test_full);
        t.addRow({"GBT (paper hyperparams)",
                  std::to_string(train_full.numRows()),
                  formatDouble(r2, 4), formatDouble(secs, 2)});
    }
    {
        ml::GradientBoostedTrees gbt;
        const auto [r2, secs] =
            fitAndScore(gbt, train_small, test_small);
        t.addRow({"GBT (subsampled data)",
                  std::to_string(train_small.numRows()),
                  formatDouble(r2, 4), formatDouble(secs, 2)});
    }
    {
        ml::RandomForestParams p;
        p.n_trees = 80;
        ml::RandomForest rf(p);
        const auto [r2, secs] = fitAndScore(rf, train_small, test_small);
        t.addRow({"RandomForest",
                  std::to_string(train_small.numRows()),
                  formatDouble(r2, 4), formatDouble(secs, 2)});
    }
    {
        ml::KnnParams p;
        p.k = 5;
        ml::KNearestNeighbors knn(p);
        const auto [r2, secs] =
            fitAndScore(knn, train_small, test_small);
        t.addRow({"kNN (k=5)", std::to_string(train_small.numRows()),
                  formatDouble(r2, 4), formatDouble(secs, 2)});
    }
    {
        ml::MlpParams p;
        p.hidden = {48};
        p.epochs = 12;
        ml::Mlp mlp(p);
        const auto [r2, secs] =
            fitAndScore(mlp, train_small, test_small);
        t.addRow({"MLP (48 hidden, 12 epochs)",
                  std::to_string(train_small.numRows()),
                  formatDouble(r2, 4), formatDouble(secs, 2)});
    }
    {
        ml::RidgeRegression ridge;
        const auto [r2, secs] =
            fitAndScore(ridge, train_small, test_small);
        t.addRow({"Ridge regression",
                  std::to_string(train_small.numRows()),
                  formatDouble(r2, 4), formatDouble(secs, 2)});
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("paper: XGBoost outperformed the LSTM-based neural\n"
                "model, random forests and kNN. Here the two tree\n"
                "ensembles lead (GBT trains several times faster than\n"
                "the forest), with kNN, the MLP and ridge behind.\n");
    return 0;
}

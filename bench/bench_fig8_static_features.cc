/**
 * @file
 * Fig. 8 — cost model trained with the static hardware representation
 * (CPU one-hot + frequency + RAM). The paper reports R^2 = 0.13; the
 * point reproduced here is the qualitative failure of static specs
 * relative to the signature representation (Fig. 9).
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/evaluation.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Figure 8",
                  "cost model from static device specs (CPU, freq, RAM)");
    const auto ctx = bench::fullContext();
    core::EvaluationHarness harness(ctx);
    const auto split = core::splitDevices(ctx.fleet().size(), 0.3, 42);

    const auto eval = harness.evalStaticFeatureModel(split);

    std::printf("train devices: %zu, test devices: %zu\n",
                split.train.size(), split.test.size());
    std::printf("test R^2  = %.4f   (paper: 0.13)\n", eval.r2);
    std::printf("test RMSE = %.1f ms\n", eval.rmse_ms);
    std::printf("test MAPE = %.1f %%\n\n", eval.mape_pct);

    // A coarse actual-vs-predicted scatter, binned by actual latency.
    TextTable t({"actual bin (ms)", "points", "mean predicted (ms)",
                 "mean |error| (ms)"});
    const double edges[] = {0, 50, 100, 200, 400, 1e9};
    for (int b = 0; b < 5; ++b) {
        double pred_sum = 0.0, err_sum = 0.0;
        std::size_t n = 0;
        for (std::size_t i = 0; i < eval.y_true.size(); ++i) {
            if (eval.y_true[i] < edges[b] || eval.y_true[i] >= edges[b + 1])
                continue;
            pred_sum += eval.y_pred[i];
            err_sum += std::abs(eval.y_pred[i] - eval.y_true[i]);
            ++n;
        }
        if (n == 0)
            continue;
        const std::string label = b < 4
            ? formatDouble(edges[b], 0) + "-" + formatDouble(edges[b + 1], 0)
            : ">= " + formatDouble(edges[b], 0);
        t.addRow({label, std::to_string(n),
                  formatDouble(pred_sum / static_cast<double>(n), 1),
                  formatDouble(err_sum / static_cast<double>(n), 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape check: this R^2 must be far below the signature\n"
                "models of Figure 9 (compare bench_fig9 output).\n");
    return 0;
}

/**
 * @file
 * Fig. 4 — k-means clustering of the 105 devices into fast / medium /
 * slow (each device a 118-dim latency vector), the per-cluster
 * latency distributions (violin-plot statistics), and the CPU <->
 * cluster membership overlap (the paper's Venn diagram).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench_support.hh"
#include "stats/descriptive.hh"
#include "stats/kmeans.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Figure 4",
                  "device clusters (fast/medium/slow) via k-means, k=3");
    const auto ctx = bench::fullContext();
    const auto vectors = ctx.deviceVectors();

    stats::KMeansConfig cfg;
    cfg.k = 3;
    const auto km = stats::kMeans(vectors, cfg);

    // Order clusters fast -> slow by mean latency.
    std::vector<double> cluster_mean(3, 0.0);
    std::vector<std::size_t> cluster_count(3, 0);
    for (std::size_t d = 0; d < vectors.size(); ++d) {
        double m = 0.0;
        for (double v : vectors[d])
            m += v;
        cluster_mean[km.assignments[d]] += m / vectors[d].size();
        ++cluster_count[km.assignments[d]];
    }
    std::vector<std::size_t> order{0, 1, 2};
    for (int c = 0; c < 3; ++c) {
        cluster_mean[c] /= std::max<std::size_t>(cluster_count[c], 1);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return cluster_mean[a] < cluster_mean[b];
              });
    const char *names[3] = {"fast", "medium", "slow"};

    TextTable t({"cluster", "devices", "mean ms", "median ms", "q1 ms",
                 "q3 ms", "min ms", "max ms"});
    std::map<std::size_t, std::string> cluster_name;
    for (int rank = 0; rank < 3; ++rank) {
        const std::size_t c = order[static_cast<std::size_t>(rank)];
        cluster_name[c] = names[rank];
        std::vector<double> lat;
        for (std::size_t d = 0; d < vectors.size(); ++d) {
            if (km.assignments[d] != c)
                continue;
            lat.insert(lat.end(), vectors[d].begin(), vectors[d].end());
        }
        const auto s = stats::summarize(lat);
        t.addRow({names[rank], std::to_string(cluster_count[c]),
                  formatDouble(s.mean, 1), formatDouble(s.median, 1),
                  formatDouble(s.q1, 1), formatDouble(s.q3, 1),
                  formatDouble(s.min, 1), formatDouble(s.max, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper cluster means: fast ~50 ms, medium ~115 ms, "
                "slow ~235 ms\n\n");

    // CPU <-> cluster membership (the Venn diagram).
    std::map<std::string, std::set<std::string>> cpu_clusters;
    std::size_t unique_devices = 0;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        const auto &core = ctx.fleet().coreOf(ctx.fleet().device(d));
        cpu_clusters[core.name].insert(
            cluster_name[km.assignments[d]]);
    }
    TextTable venn({"CPU", "clusters containing it"});
    for (const auto &[cpu, clusters] : cpu_clusters) {
        std::string joined;
        for (const auto &c : clusters) {
            if (!joined.empty())
                joined += ", ";
            joined += c;
        }
        venn.addRow({cpu, joined});
    }
    std::printf("%s\n", venn.render().c_str());

    // How often the CPU alone determines the cluster (paper: 80/105).
    std::map<std::string, std::set<std::size_t>> cpu_cluster_ids;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        cpu_cluster_ids[ctx.fleet().coreOf(ctx.fleet().device(d)).name]
            .insert(km.assignments[d]);
    }
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        const auto &core = ctx.fleet().coreOf(ctx.fleet().device(d));
        if (cpu_cluster_ids[core.name].size() == 1)
            ++unique_devices;
    }
    std::printf("devices whose CPU uniquely determines the cluster: "
                "%zu / %zu (paper: 80 / 105)\n",
                unique_devices, ctx.fleet().size());
    return 0;
}

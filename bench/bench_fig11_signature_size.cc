/**
 * @file
 * Fig. 11 — accuracy vs. signature-set size (2..20) for RS, MIS and
 * SCCS. MIS/SCCS selections are greedy, so a single size-20 run
 * provides every prefix; RS is averaged over GCM_FIG11_RS_SAMPLES
 * random sets per size (the paper averaged 100).
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/evaluation.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    const std::size_t rs_samples =
        bench::envSize("GCM_FIG11_RS_SAMPLES", 5);
    bench::banner("Figure 11",
                  "R^2 vs signature-set size (RS x"
                      + std::to_string(rs_samples) + " / MIS / SCCS)");
    const auto ctx = bench::fullContext();
    core::EvaluationHarness harness(ctx);
    const auto split = core::splitDevices(ctx.fleet().size(), 0.3, 42);
    const auto train_lat = ctx.latencyMatrix(split.train);

    const std::vector<std::size_t> sizes{2, 4, 6, 8, 10, 14, 20};

    // Greedy selections once at the maximum size; prefixes reuse them.
    core::SignatureConfig sel;
    sel.size = sizes.back();
    const auto mis_full = core::selectMisSignature(
        train_lat, sizes.back(), sel);
    const auto sccs_full = core::selectSccsSignature(
        train_lat, sizes.back(), sel);

    TextTable t({"size", "RS (mean)", "MIS", "SCCS"});
    for (std::size_t size : sizes) {
        double rs_sum = 0.0;
        for (std::size_t s = 0; s < rs_samples; ++s) {
            const auto sig = core::selectRandomSignature(
                ctx.numNetworks(), size, 500 + s);
            rs_sum += harness.evalWithSignature(split, sig).r2;
        }
        const std::vector<std::size_t> mis(
            mis_full.begin(),
            mis_full.begin() + static_cast<std::ptrdiff_t>(size));
        const std::vector<std::size_t> sccs(
            sccs_full.begin(),
            sccs_full.begin() + static_cast<std::ptrdiff_t>(size));
        const double rs = rs_sum / static_cast<double>(rs_samples);
        const double mis_r2 = harness.evalWithSignature(split, mis).r2;
        const double sccs_r2 =
            harness.evalWithSignature(split, sccs).r2;
        t.addRow(std::to_string(size), {rs, mis_r2, sccs_r2});
        std::printf("  size %2zu done (RS %.3f, MIS %.3f, SCCS %.3f)\n",
                    size, rs, mis_r2, sccs_r2);
    }
    std::printf("\n%s\n", t.render().c_str());
    std::printf("paper: MIS/SCCS are ~0.94 even for small sets and\n"
                "saturate by size 5-10; RS keeps improving with size\n"
                "but needs larger sets to match.\n");
    return 0;
}

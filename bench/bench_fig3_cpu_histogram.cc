/**
 * @file
 * Fig. 3 — histogram of CPU core families across the 105 devices,
 * plus the chipset/core diversity counts quoted in Section II
 * (38 chipset types, 22 core families).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench_support.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Figure 3",
                  "CPU core-family histogram over the 105 devices");
    const auto ctx = bench::fullContext();
    const auto &fleet = ctx.fleet();

    std::map<std::string, std::size_t> by_core;
    std::set<std::size_t> chipsets;
    for (const auto &d : fleet.devices()) {
        ++by_core[fleet.coreOf(d).name];
        chipsets.insert(d.chipset_index);
    }

    // Sort by introduction year, as the paper's x-axis does.
    std::vector<std::pair<std::string, std::size_t>> rows(
        by_core.begin(), by_core.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return sim::coreFamily(sim::coreFamilyIdByName(a.first))
                             .year
                      < sim::coreFamily(
                            sim::coreFamilyIdByName(b.first))
                            .year;
              });
    std::vector<std::string> labels;
    std::vector<double> counts;
    for (const auto &[name, count] : rows) {
        labels.push_back(name);
        counts.push_back(static_cast<double>(count));
    }
    std::printf("%s\n",
                renderBars(labels, counts,
                           "devices per CPU core family (by core year)")
                    .c_str());

    std::printf("unique chipset types: %zu (paper: 38)\n",
                chipsets.size());
    std::printf("unique core families: %zu (paper: 22)\n", rows.size());
    std::printf("devices: %zu (paper: 105)\n", fleet.size());
    std::printf("data points: %zu (paper: 12390)\n", ctx.repo().size());
    return 0;
}

/**
 * @file
 * Fig. 10 — robustness of randomly chosen signature sets: train one
 * model per random 10-network signature and look at the R^2 spread.
 * The paper uses 100 samples (mean 0.93, outliers at 0.875); set
 * GCM_FIG10_SAMPLES to trade runtime for resolution.
 */

#include <algorithm>
#include <cstdio>

#include "bench_support.hh"
#include "core/evaluation.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    const std::size_t samples = bench::envSize("GCM_FIG10_SAMPLES", 100);
    bench::banner("Figure 10",
                  "R^2 across " + std::to_string(samples)
                      + " random signature sets (size 10)");
    const auto ctx = bench::fullContext();
    core::EvaluationHarness harness(ctx);
    const auto split = core::splitDevices(ctx.fleet().size(), 0.3, 42);

    std::vector<double> r2s;
    r2s.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        core::SignatureConfig cfg;
        cfg.size = 10;
        cfg.seed = 1000 + i;
        const auto eval = harness.evalSignatureModel(
            split, core::SignatureMethod::RandomSampling, cfg);
        r2s.push_back(eval.r2);
        if ((i + 1) % 10 == 0)
            std::printf("  ... %zu / %zu models trained\n", i + 1,
                        samples);
    }

    std::printf("%s\n",
                renderHistogram(r2s, 10, "R^2 histogram (RS samples)",
                                "R^2")
                    .c_str());
    const auto s = stats::summarize(r2s);
    TextTable t({"statistic", "R^2"});
    t.addRow("mean (paper: 0.93)", {s.mean});
    t.addRow("median", {s.median});
    t.addRow("min / worst outlier (paper: 0.875)", {s.min});
    t.addRow("max", {s.max});
    t.addRow("stddev", {s.stddev});
    std::printf("%s\n", t.render().c_str());
    std::printf("shape check: RS is competitive on average but has a\n"
                "low tail — the paper's argument for deterministic\n"
                "MIS/SCCS selection.\n");
    return 0;
}

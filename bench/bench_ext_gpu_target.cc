/**
 * @file
 * Extension (paper Section II-B): "the methodology presented in the
 * subsequent sections would also apply to execution on GPUs and
 * NPUs". This bench runs the whole pipeline against the GPU-delegate
 * execution target: it first reproduces the paper's field observation
 * (many devices have unsupported or flaky delegates), then trains a
 * signature-set cost model purely on GPU latencies of the reliable
 * devices and reports its R^2.
 */

#include <algorithm>
#include <cstdio>

#include "bench_support.hh"
#include "core/net_encoder.hh"
#include "core/signature.hh"
#include "ml/gbt.hh"
#include "ml/metrics.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Extension: GPU delegate",
                  "signature cost model on GPU latencies");
    const auto ctx = bench::fullContext(); // networks + fleet (CPU repo)

    // GPU campaign over the same fleet and suite.
    sim::CampaignConfig gpu_cfg;
    gpu_cfg.target = sim::ExecutionTarget::GpuDelegate;
    sim::CharacterizationCampaign campaign(ctx.fleet(),
                                           sim::LatencyModel{}, gpu_cfg);

    // The paper's complaint, quantified.
    std::size_t unsupported = 0, flaky = 0;
    for (const auto &device : ctx.fleet().devices()) {
        switch (campaign.delegateStatus(device)) {
          case sim::GpuDelegateStatus::Unsupported: ++unsupported; break;
          case sim::GpuDelegateStatus::Flaky: ++flaky; break;
          default: break;
        }
    }
    const auto devices = campaign.measurableDevices();
    std::printf("fleet: %zu devices; delegate unsupported on %zu, "
                "flaky on %zu -> %zu usable\n",
                ctx.fleet().size(), unsupported, flaky, devices.size());
    std::printf("(the paper restricted itself to CPUs for exactly this "
                "reason)\n\n");

    const auto repo = campaign.run(ctx.suite());

    // Latency matrix [net][usable device].
    std::vector<std::vector<double>> lat(
        ctx.numNetworks(), std::vector<double>(devices.size()));
    for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
        for (std::size_t d = 0; d < devices.size(); ++d) {
            lat[n][d] = repo.latencyMs(
                ctx.fleet().device(devices[d]).id,
                ctx.networkNames()[n]);
        }
    }

    // 70/30 split over the usable devices.
    Rng rng(42);
    std::vector<std::size_t> order(devices.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    const std::size_t test_n = order.size() * 3 / 10;
    const std::vector<std::size_t> test(order.begin(),
                                        order.begin()
                                            + static_cast<std::ptrdiff_t>(
                                                test_n));
    const std::vector<std::size_t> train(
        order.begin() + static_cast<std::ptrdiff_t>(test_n),
        order.end());

    // Signature from training devices, on GPU latencies.
    std::vector<std::vector<double>> train_lat(ctx.numNetworks());
    for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
        for (std::size_t d : train)
            train_lat[n].push_back(lat[n][d]);
    }
    core::SignatureConfig sel;
    sel.size = 10;
    const auto signature =
        core::selectMisSignature(train_lat, 10, sel);

    // Datasets: (encoding ++ GPU signature latencies) -> GPU latency.
    std::vector<std::vector<float>> enc;
    for (const auto &g : ctx.suite())
        enc.push_back(ctx.encoder().encode(g));
    std::vector<bool> is_sig(ctx.numNetworks(), false);
    for (std::size_t s : signature)
        is_sig[s] = true;
    const std::size_t net_f = ctx.encoder().numFeatures();
    auto build = [&](const std::vector<std::size_t> &devs) {
        ml::Dataset ds(net_f + signature.size());
        std::vector<float> row(net_f + signature.size());
        for (std::size_t d : devs) {
            for (std::size_t k = 0; k < signature.size(); ++k)
                row[net_f + k] =
                    static_cast<float>(lat[signature[k]][d]);
            for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
                if (is_sig[n])
                    continue;
                std::copy(enc[n].begin(), enc[n].end(), row.begin());
                ds.addRow(row, lat[n][d]);
            }
        }
        return ds;
    };
    const auto train_ds = build(train);
    const auto test_ds = build(test);
    ml::GradientBoostedTrees model;
    model.train(train_ds);
    const double r2 =
        ml::r2Score(test_ds.labels(), model.predict(test_ds));

    std::printf("GPU signature (MIS):");
    for (std::size_t s : signature)
        std::printf(" %s", ctx.networkNames()[s].c_str());
    std::printf("\n\ntest R^2 on GPU latencies = %.4f "
                "(train %zu devices, test %zu devices)\n",
                r2, train.size(), test.size());
    std::printf("shape check: comparable to the CPU-target Fig. 9 "
                "results, supporting the paper's claim that the\n"
                "methodology transfers to other execution targets.\n");
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks of the library's hot paths: GBT
 * training/prediction, the latency simulator, the network encoder,
 * signature selection and the EDA kernels.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/cost_model.hh"
#include "core/experiment_context.hh"
#include "core/net_encoder.hh"
#include "core/signature.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "fleet/loop.hh"
#include "ml/flat_ensemble.hh"
#include "ml/gbt.hh"
#include "search/search.hh"
#include "serve/frontend.hh"
#include "serve/registry.hh"
#include "serve/service.hh"
#include "sim/campaign.hh"
#include "stats/correlation.hh"
#include "stats/kmeans.hh"
#include "stats/mutual_info.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

using namespace gcm;

namespace
{

ml::Dataset
syntheticDataset(std::size_t rows, std::size_t features,
                 std::uint64_t seed)
{
    Rng rng(seed);
    ml::Dataset ds(features);
    std::vector<float> row(features);
    for (std::size_t i = 0; i < rows; ++i) {
        double y = 0.0;
        for (std::size_t f = 0; f < features; ++f) {
            row[f] = static_cast<float>(rng.uniform(-1, 1));
            if (f < 8)
                y += (f + 1) * row[f];
        }
        ds.addRow(row, y + 0.1 * rng.normal());
    }
    return ds;
}

const dnn::Graph &
v2Int8()
{
    static const dnn::Graph g =
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0"));
    return g;
}

/** Synthetic latency matrix (networks x devices). */
std::vector<std::vector<double>>
latencyMatrix(std::size_t nets, std::size_t devices, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> speed(devices);
    for (auto &s : speed)
        s = rng.uniform(1.0, 8.0);
    std::vector<std::vector<double>> m(nets,
                                       std::vector<double>(devices));
    for (std::size_t n = 0; n < nets; ++n) {
        const double size = rng.uniform(50.0, 800.0);
        for (std::size_t d = 0; d < devices; ++d)
            m[n][d] = size / speed[d] * rng.lognormalFactor(0.05);
    }
    return m;
}

} // namespace

static void
BM_GbtTrain(benchmark::State &state)
{
    const auto ds = syntheticDataset(
        static_cast<std::size_t>(state.range(0)), 64, 1);
    ml::GbtParams p;
    p.n_estimators = 50;
    for (auto _ : state) {
        ml::GradientBoostedTrees model(p);
        model.train(ds);
        benchmark::DoNotOptimize(model.numTrees());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbtTrain)->Arg(1000)->Arg(4000);

static void
BM_GbtPredict(benchmark::State &state)
{
    const auto ds = syntheticDataset(2000, 64, 2);
    ml::GradientBoostedTrees model;
    model.train(ds);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.predict(ds));
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_GbtPredict);

/**
 * Compiled-inference head-to-head: the same trained booster predicting
 * the same 2000x64 matrix through the node walker (predictRow per
 * row) versus the flat SoA engine (one blocked predictBatch). Both
 * are bit-identical by the ml/flat_ensemble.hh contract, so the gap
 * is pure representation + traversal + parallelism.
 */
static void
BM_NodePredict(benchmark::State &state)
{
    const auto ds = syntheticDataset(2000, 64, 2);
    ml::GradientBoostedTrees model;
    model.train(ds);
    for (auto _ : state) {
        double acc = 0.0;
        for (std::size_t i = 0; i < ds.numRows(); ++i)
            acc += model.predictRow(ds.row(i));
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_NodePredict);

static void
BM_FlatPredict(benchmark::State &state)
{
    const auto ds = syntheticDataset(2000, 64, 2);
    ml::GradientBoostedTrees model;
    model.train(ds);
    const ml::FlatEnsemble flat = model.compile();
    setThreads(static_cast<std::size_t>(state.range(0)));
    std::vector<double> out(ds.numRows());
    for (auto _ : state) {
        flat.predictBatch(ds.row(0), ds.numRows(), ds.numFeatures(),
                          out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * 2000);
    setThreads(1);
}
BENCHMARK(BM_FlatPredict)->Arg(1)->Arg(8);

/**
 * Thread-scaling variants. Arg is the worker-thread count handed to
 * setThreads(); results stay bit-identical across counts, so these
 * measure pure wall-clock scaling of the parallel execution layer.
 */
static void
BM_GbtTrainMT(benchmark::State &state)
{
    setThreads(static_cast<std::size_t>(state.range(0)));
    const auto ds = syntheticDataset(4000, 64, 1);
    ml::GbtParams p;
    p.n_estimators = 50;
    for (auto _ : state) {
        ml::GradientBoostedTrees model(p);
        model.train(ds);
        benchmark::DoNotOptimize(model.numTrees());
    }
    state.SetItemsProcessed(state.iterations() * 4000);
    setThreads(1);
}
BENCHMARK(BM_GbtTrainMT)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

static void
BM_GbtPredictMT(benchmark::State &state)
{
    const auto ds = syntheticDataset(2000, 64, 2);
    ml::GradientBoostedTrees model;
    model.train(ds);
    setThreads(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.predict(ds));
    }
    state.SetItemsProcessed(state.iterations() * 2000);
    setThreads(1);
}
BENCHMARK(BM_GbtPredictMT)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void
BM_CampaignRunMT(benchmark::State &state)
{
    setThreads(static_cast<std::size_t>(state.range(0)));
    const auto fleet = sim::DeviceDatabase::standard(2020, 16);
    const sim::LatencyModel model;
    sim::CampaignConfig config;
    config.runs_per_network = 10;
    std::vector<dnn::Graph> suite;
    suite.push_back(dnn::buildZooModel("mobilenet_v1_1.0"));
    suite.push_back(dnn::buildZooModel("mobilenet_v2_1.0"));
    suite.push_back(dnn::buildZooModel("squeezenet_1.0"));
    const sim::CharacterizationCampaign campaign(fleet, model, config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(campaign.run(suite).size());
    }
    state.SetItemsProcessed(state.iterations() * 16 * 3);
    setThreads(1);
}
BENCHMARK(BM_CampaignRunMT)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Faulted campaign at increasing fault rates (arg = rate in percent).
 * Retry/backoff bookkeeping runs on the simulated clock, so the
 * wall-clock overhead over the fault-free campaign must stay bounded
 * by the extra sessions actually attempted — compare against the
 * rate-0 row.
 */
static void
BM_CampaignFaulted(benchmark::State &state)
{
    const auto fleet = sim::DeviceDatabase::standard(2020, 16);
    const sim::LatencyModel model;
    sim::CampaignConfig config;
    config.runs_per_network = 10;
    config.faults = sim::FaultParams::uniformRate(
        static_cast<double>(state.range(0)) / 100.0);
    std::vector<dnn::Graph> suite;
    suite.push_back(dnn::buildZooModel("mobilenet_v1_1.0"));
    suite.push_back(dnn::buildZooModel("mobilenet_v2_1.0"));
    suite.push_back(dnn::buildZooModel("squeezenet_1.0"));
    const sim::CharacterizationCampaign campaign(fleet, model, config);
    std::uint64_t sessions = 0;
    for (auto _ : state) {
        const auto report = campaign.runResilient(suite);
        benchmark::DoNotOptimize(report.repo.size());
        sessions += report.stats.sessions_attempted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(sessions));
    state.counters["sessions"] = benchmark::Counter(
        static_cast<double>(sessions) / state.iterations());
}
BENCHMARK(BM_CampaignFaulted)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

static void
BM_SimulatorGraphLatency(benchmark::State &state)
{
    const auto fleet = sim::DeviceDatabase::standard();
    const sim::LatencyModel model;
    const auto &device = fleet.device(0);
    const auto &chipset = fleet.chipsetOf(device);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.graphLatencyMs(v2Int8(), device, chipset));
    }
}
BENCHMARK(BM_SimulatorGraphLatency);

static void
BM_DeviceMeasure30Runs(benchmark::State &state)
{
    const auto fleet = sim::DeviceDatabase::standard();
    const sim::LatencyModel model;
    const auto &device = fleet.device(0);
    const auto &chipset = fleet.chipsetOf(device);
    sim::DeviceRuntime runtime(device, chipset, model, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(runtime.measure(v2Int8()).mean_ms);
    }
}
BENCHMARK(BM_DeviceMeasure30Runs);

static void
BM_QuantizePass(benchmark::State &state)
{
    const auto g = dnn::buildZooModel("mobilenet_v3_large");
    for (auto _ : state) {
        benchmark::DoNotOptimize(dnn::quantize(g).numNodes());
    }
}
BENCHMARK(BM_QuantizePass);

static void
BM_NetworkEncode(benchmark::State &state)
{
    const core::NetworkEncoder enc(130);
    for (auto _ : state) {
        benchmark::DoNotOptimize(enc.encode(v2Int8()));
    }
}
BENCHMARK(BM_NetworkEncode);

static void
BM_SpearmanMatrix118(benchmark::State &state)
{
    const auto m = latencyMatrix(118, 73, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::spearmanMatrix(m));
    }
}
BENCHMARK(BM_SpearmanMatrix118);

static void
BM_MisSelection(benchmark::State &state)
{
    const auto m = latencyMatrix(118, 73, 4);
    core::SignatureConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::selectMisSignature(m, 10, cfg));
    }
}
BENCHMARK(BM_MisSelection)->Unit(benchmark::kMillisecond);

static void
BM_SccsSelection(benchmark::State &state)
{
    const auto m = latencyMatrix(118, 73, 5);
    core::SignatureConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::selectSccsSignature(m, 10, cfg));
    }
}
BENCHMARK(BM_SccsSelection)->Unit(benchmark::kMillisecond);

namespace
{

/**
 * Registry with one published cost model (reduced training scale;
 * production-sized 200-tree booster so the serve benchmarks measure
 * a realistic per-request compute load).
 */
const serve::ModelRegistry &
serveRegistry()
{
    static const serve::ModelRegistry *registry = [] {
        core::ExperimentConfig cfg;
        cfg.num_random_networks = 12;
        cfg.num_devices = 24;
        cfg.campaign.runs_per_network = 5;
        const auto ctx = core::ExperimentContext::build(cfg);
        std::vector<std::size_t> devices(ctx.fleet().size());
        for (std::size_t i = 0; i < devices.size(); ++i)
            devices[i] = i;
        core::SignatureCostModel::Config mcfg;
        mcfg.gbt.n_estimators = 200;
        const auto model = core::SignatureCostModel::train(
            ctx.suite(), ctx.latencyMatrix(devices), mcfg);
        std::stringstream ss;
        model.serialize(ss);
        auto *r = new serve::ModelRegistry;
        r->publish(serve::ModelSnapshot::fromStream(ss));
        return r;
    }();
    return *registry;
}

/**
 * A cold batch: `n` requests over four zoo networks with distinct
 * per-request signatures, so every key is unique and (with the cache
 * disabled) every request runs the full compute path.
 */
std::vector<serve::ServeRequest>
serveBatch(std::size_t n)
{
    const auto &registry = serveRegistry();
    const std::size_t width = registry.active()
                                  .snapshot->costModel()
                                  .signatureNames()
                                  .size();
    static const char *kNetworks[] = {
        "mobilenet_v2_1.0",
        "mobilenet_v1_1.0",
        "squeezenet_1.1",
        "mnasnet_a1",
    };
    std::vector<serve::ServeRequest> batch(n);
    for (std::size_t i = 0; i < n; ++i) {
        serve::ServeRequest &req = batch[i];
        req.id = "bench-" + std::to_string(i);
        req.network = kNetworks[i % 4];
        for (std::size_t k = 0; k < width; ++k) {
            req.signature.push_back(
                5.0 + static_cast<double>(k)
                + 0.001 * static_cast<double>(i));
        }
        req.has_signature = true;
    }
    return batch;
}

} // namespace

/**
 * Cold path: cache disabled and every key unique, so each of the 256
 * requests per batch runs resolution + row build + compiled predict.
 * items/s is requests per second.
 */
static void
BM_ServePredict(benchmark::State &state)
{
    serve::ServiceConfig cfg;
    cfg.cache_capacity = 0;
    serve::PredictionService service(serveRegistry(), {}, cfg);
    const auto batch = serveBatch(256);
    for (auto _ : state) {
        benchmark::DoNotOptimize(service.processBatch(batch).size());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServePredict);

/** Warm path: every request after the first batch is a cache hit. */
static void
BM_ServeCacheHit(benchmark::State &state)
{
    serve::PredictionService service(serveRegistry(), {}, {});
    const auto batch = serveBatch(256);
    (void)service.processBatch(batch); // warm the cache
    for (auto _ : state) {
        benchmark::DoNotOptimize(service.processBatch(batch).size());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_ServeCacheHit);

/**
 * Front end at 2x capacity: plan (DES over 256 arrivals) + parallel
 * execute on 2 workers, walking the degradation ladder end to end —
 * the per-request cost of overload handling itself. items/s is
 * arrivals per second.
 */
static void
BM_ServeOverload(benchmark::State &state)
{
    serve::FrontEndConfig cfg;
    cfg.workers = 2;
    serve::ServerFrontEnd frontend(serveRegistry(), {}, cfg);

    // Raw-signature request lines (the registry has no device table),
    // stamped at twice the front end's sustainable rate.
    const auto batch = serveBatch(256);
    const double gap_ms = 1000.0 / (2.0 * frontend.capacityQps());
    std::vector<serve::Arrival> arrivals;
    arrivals.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        std::string line = "{\"id\": \"" + batch[i].id
                           + "\", \"network\": \"" + batch[i].network
                           + "\", \"signature\": [";
        for (std::size_t k = 0; k < batch[i].signature.size(); ++k) {
            if (k)
                line += ", ";
            line += std::to_string(batch[i].signature[k]);
        }
        line += "]}";
        arrivals.push_back(
            {static_cast<double>(i) * gap_ms, std::move(line)});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            frontend.run(arrivals, nullptr).served());
    }
    state.SetItemsProcessed(
        state.iterations()
        * static_cast<std::int64_t>(arrivals.size()));
}
BENCHMARK(BM_ServeOverload);

/**
 * End-to-end architecture search: population 16 x 3 generations over
 * two synthetic devices, every candidate priced through the serving
 * stack (fresh service per iteration, so generation-0 misses and
 * elite re-pricing hits are both in the loop). items/s is candidate
 * evaluations per second.
 */
static void
BM_Search(benchmark::State &state)
{
    const auto &registry = serveRegistry();
    const std::size_t width = registry.active()
                                  .snapshot->costModel()
                                  .signatureNames()
                                  .size();
    serve::PredictionService::DeviceTable table;
    for (std::size_t d = 0; d < 2; ++d) {
        std::vector<double> sig;
        for (std::size_t k = 0; k < width; ++k) {
            sig.push_back(5.0 + static_cast<double>(k)
                          + 0.5 * static_cast<double>(d));
        }
        table["bench-dev-" + std::to_string(d)] = std::move(sig);
    }
    search::SearchConfig cfg;
    cfg.budget_ms = 50.0;
    cfg.devices = {"bench-dev-0", "bench-dev-1"};
    cfg.seed = 7;
    cfg.population = 16;
    cfg.generations = 3;
    cfg.elite = 4;
    std::uint64_t evaluated = 0;
    for (auto _ : state) {
        serve::PredictionService service(registry, table);
        search::ArchitectureSearch engine(service, cfg);
        const search::SearchResult result = engine.run();
        evaluated += result.candidates_evaluated;
        benchmark::DoNotOptimize(result.front.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(evaluated));
    state.SetLabel("pop 16 x 3 gens x 2 devices");
}
BENCHMARK(BM_Search)->Unit(benchmark::kMillisecond);

/**
 * Fleet closed loop end to end: streaming campaign rounds feeding the
 * measurement repository, two cadenced retrains through the canary
 * gate, and live front-end traffic between rounds — the steady-state
 * cost of one control-loop pass at CI scale. items/s is rounds per
 * second.
 */
static void
BM_FleetLoop(benchmark::State &state)
{
    fleet::FleetLoopConfig cfg;
    cfg.fleet.fleet_size = 120;
    cfg.fleet.seed_fleet_size = 40;
    cfg.rounds = 4;
    cfg.devices_per_round = 8;
    cfg.fault_rate = 0.1;
    cfg.num_random_networks = 2;
    cfg.campaign.runs_per_network = 3;
    cfg.retrain.cadence_rounds = 2;
    cfg.retrain.min_train_devices = 4;
    cfg.retrain.selection.size = 6;
    cfg.retrain.gbt.n_estimators = 20;
    cfg.canary.max_eval_devices = 6;
    cfg.traffic.requests_per_round = 24;
    cfg.traffic.workers = 2;
    for (auto _ : state) {
        const fleet::FleetResult result = fleet::runFleetLoop(cfg);
        benchmark::DoNotOptimize(result.served_total);
    }
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(cfg.rounds));
    state.SetLabel("4 rounds, 2 retrains, live serving");
}
BENCHMARK(BM_FleetLoop)->Unit(benchmark::kMillisecond);

static void
BM_KMeansDevices(benchmark::State &state)
{
    const auto nets = latencyMatrix(105, 118, 6); // device vectors
    stats::KMeansConfig cfg;
    cfg.k = 3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::kMeans(nets, cfg).inertia);
    }
    state.SetLabel("105 devices x 118 dims");
}
BENCHMARK(BM_KMeansDevices)->Unit(benchmark::kMillisecond);

namespace
{

/**
 * Console reporter that additionally records (name, ns/op) for every
 * successful run and dumps the gcm-bench/v1 perf-trajectory artifact:
 *
 *   {
 *     "schema": "gcm-bench/v1",
 *     "suite": "bench_micro_perf",
 *     "git_rev": "<short rev or 'unknown'>",
 *     "threads": <worker count benchmarks start from>,
 *     "benchmarks": [{"name": ..., "ns_per_op": ...}, ...]
 *   }
 *
 * The artifact is committed at the repo root so successive PRs leave
 * a comparable perf trajectory. Output path defaults to
 * BENCH_micro.json in the working directory; override with
 * GCM_BENCH_JSON. Git revision comes from GCM_BENCH_GIT_REV, else
 * `git rev-parse --short HEAD`.
 */
class TrajectoryReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred || run.iterations == 0)
                continue;
            entries_.emplace_back(run.benchmark_name(),
                                  run.real_accumulated_time
                                      / static_cast<double>(
                                          run.iterations)
                                      * 1e9);
        }
        ConsoleReporter::ReportRuns(runs);
    }

    bool
    writeJson(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os)
            return false;
        os << "{\n";
        os << "  \"schema\": \"gcm-bench/v1\",\n";
        os << "  \"suite\": \"bench_micro_perf\",\n";
        os << "  \"git_rev\": \"" << escape(gitRev()) << "\",\n";
        os << "  \"threads\": " << numThreads() << ",\n";
        os << "  \"benchmarks\": [";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            os << (i == 0 ? "\n" : ",\n");
            char ns[64];
            std::snprintf(ns, sizeof(ns), "%.2f",
                          entries_[i].second);
            os << "    {\"name\": \"" << escape(entries_[i].first)
               << "\", \"ns_per_op\": " << ns << "}";
        }
        os << "\n  ]\n}\n";
        return os.good();
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            if (static_cast<unsigned char>(c) >= 0x20)
                out.push_back(c);
        }
        return out;
    }

    static std::string
    gitRev()
    {
        if (const char *rev = std::getenv("GCM_BENCH_GIT_REV"))
            return rev;
        std::string rev;
        if (FILE *p = popen("git rev-parse --short HEAD 2>/dev/null",
                            "r")) {
            char buf[64];
            if (std::fgets(buf, sizeof(buf), p))
                rev = buf;
            pclose(p);
        }
        while (!rev.empty()
               && (rev.back() == '\n' || rev.back() == '\r')) {
            rev.pop_back();
        }
        return rev.empty() ? "unknown" : rev;
    }

    std::vector<std::pair<std::string, double>> entries_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    TrajectoryReporter reporter;
    const std::size_t threads_at_start = numThreads();
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    setThreads(threads_at_start);
    const char *path = std::getenv("GCM_BENCH_JSON");
    if (!reporter.writeJson(path ? path : "BENCH_micro.json")) {
        std::fprintf(stderr,
                     "bench_micro_perf: failed to write %s\n",
                     path ? path : "BENCH_micro.json");
        return 1;
    }
    return 0;
}

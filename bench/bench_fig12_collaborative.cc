/**
 * @file
 * Fig. 12 — collaborative workload characterization: average R^2 of
 * the shared cost model as devices join one at a time, each
 * contributing the signature-set measurements plus 10/20/30% of
 * randomly chosen networks.
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/collaborative.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    const std::size_t max_devices =
        bench::envSize("GCM_FIG12_DEVICES", 50);
    bench::banner("Figure 12",
                  "collaborative model accuracy vs number of devices");
    const auto ctx = bench::fullContext();
    core::CollaborativeSimulation sim(ctx, /*signature_size=*/10);

    std::printf("MIS signature (size 10):");
    for (std::size_t s : sim.signature())
        std::printf(" %s", ctx.networkNames()[s].c_str());
    std::printf("\n\n");

    const double fractions[] = {0.1, 0.2, 0.3};
    std::vector<std::vector<core::CollaborativeStep>> runs;
    for (double frac : fractions) {
        core::CollaborativeConfig cfg;
        cfg.max_devices = max_devices;
        cfg.contribution_fraction = frac;
        runs.push_back(sim.run(cfg));
        std::printf("  contribution %.0f%% done (final avg R^2 %.3f)\n",
                    frac * 100.0, runs.back().back().avg_r2);
    }

    TextTable t({"devices", "avg R^2 @10%", "avg R^2 @20%",
                 "avg R^2 @30%"});
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
        if ((i + 1) % 5 != 0 && i != 0 && i + 1 != runs[0].size())
            continue;
        t.addRow(std::to_string(runs[0][i].num_devices),
                 {runs[0][i].avg_r2, runs[1][i].avg_r2,
                  runs[2][i].avg_r2},
                 3);
    }
    std::printf("\n%s\n", t.render().c_str());
    std::printf("paper: R^2 > 0.9 already at ~10 devices; > 0.95 needs\n"
                "more than 40; the curves rise with the number of\n"
                "devices and with the contribution percentage.\n");
    return 0;
}

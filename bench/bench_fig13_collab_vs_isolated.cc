/**
 * @file
 * Fig. 13 — collaborative vs. isolated training for one device
 * (Redmi Note 5 Pro, Kryo 260 Gold): the isolated per-device model's
 * R^2 as its own training measurements grow from a handful to the
 * full suite, against the collaborative model where the device
 * contributes only 10 signature + 10 network measurements.
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/collaborative.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Figure 13",
                  "collaborative vs isolated cost model (Redmi Note 5 "
                  "Pro)");
    const auto ctx = bench::fullContext();
    const std::size_t target = 0; // Redmi-Note-5-Pro by construction
    std::printf("target device: %s (%s)\n\n",
                ctx.fleet().device(target).model_name.c_str(),
                ctx.fleet().coreOf(ctx.fleet().device(target)).name
                    .c_str());

    core::CollaborativeSimulation sim(ctx, /*signature_size=*/10);

    // Isolated curve: R^2 on all networks vs own-measurement count.
    const std::size_t stride = bench::envSize("GCM_FIG13_STRIDE", 6);
    const auto curve = sim.isolatedCurve(target, 3, {}, stride);

    // Collaborative point: 50 devices x (10 signature + 10 networks).
    core::CollaborativeConfig cfg;
    cfg.max_devices = 50;
    cfg.contribution_fraction =
        10.0 / static_cast<double>(ctx.numNetworks() - 10);
    const double collab_r2 = sim.collaborativeR2ForDevice(target, cfg);

    TextTable t({"own measurements (isolated)", "R^2"});
    std::size_t crossover = 0;
    for (const auto &[k, r2] : curve) {
        t.addRow(std::to_string(k), {r2}, 3);
        if (crossover == 0 && r2 >= collab_r2)
            crossover = k;
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("collaborative model: R^2 = %.3f with only 20 of the\n"
                "device's own measurements (10 signature + 10 networks)\n",
                collab_r2);
    if (crossover > 0) {
        std::printf("isolated training needs ~%zu of the device's own "
                    "measurements to match -> %.1fx savings\n",
                    crossover, static_cast<double>(crossover) / 20.0);
    } else {
        std::printf("isolated training never matches the collaborative "
                    "model on this sweep (> %.0fx savings)\n",
                    static_cast<double>(curve.back().first) / 20.0);
    }
    std::printf("paper: collaborative R^2 = 0.98 from 20 contributed\n"
                "measurements, matching an isolated model trained on\n"
                ">100 networks (11x fewer measurements).\n");
    return 0;
}

/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures. Every bench builds the standard dataset
 * (118 networks x 105 devices) through ExperimentContext::build(),
 * which is deterministic and takes well under a second.
 */

#ifndef GCM_BENCH_BENCH_SUPPORT_HH
#define GCM_BENCH_BENCH_SUPPORT_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment_context.hh"

namespace gcm::bench
{

/** The paper's full dataset. */
inline core::ExperimentContext
fullContext()
{
    return core::ExperimentContext::build();
}

/** Integer environment override with a default (sweep sizing). */
inline std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/** Banner naming the paper artifact a bench regenerates. */
inline void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", artifact.c_str(), description.c_str());
    std::printf("==============================================================\n");
}

/** All device indices of a context. */
inline std::vector<std::size_t>
allDevices(const core::ExperimentContext &ctx)
{
    std::vector<std::size_t> devices(ctx.fleet().size());
    for (std::size_t i = 0; i < devices.size(); ++i)
        devices[i] = i;
    return devices;
}

} // namespace gcm::bench

#endif // GCM_BENCH_BENCH_SUPPORT_HH

/**
 * @file
 * Fig. 2 — distribution of FLOPs (millions of MACs) across the
 * 118-network suite (18 popular + 100 generated networks).
 */

#include <algorithm>
#include <cstdio>

#include "bench_support.hh"
#include "dnn/analysis.hh"
#include "stats/descriptive.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Figure 2",
                  "FLOPs (MMACs) distribution of the 118 networks");
    const auto ctx = bench::fullContext();

    std::vector<double> mmacs;
    double zoo_min = 1e18, zoo_max = 0.0;
    double gen_min = 1e18, gen_max = 0.0;
    for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
        const double m = dnn::megaMacs(ctx.fp32Suite()[n]);
        mmacs.push_back(m);
        if (n < 18) {
            zoo_min = std::min(zoo_min, m);
            zoo_max = std::max(zoo_max, m);
        } else {
            gen_min = std::min(gen_min, m);
            gen_max = std::max(gen_max, m);
        }
    }

    std::printf("%s\n",
                renderHistogram(mmacs, 12,
                                "MMACs histogram (118 networks)", "MMACs")
                    .c_str());

    const auto s = stats::summarize(mmacs);
    TextTable t({"statistic", "MMACs"});
    t.addRow("min", {s.min}, 1);
    t.addRow("q1", {s.q1}, 1);
    t.addRow("median", {s.median}, 1);
    t.addRow("q3", {s.q3}, 1);
    t.addRow("max", {s.max}, 1);
    t.addRow("mean", {s.mean}, 1);
    std::printf("%s\n", t.render().c_str());

    std::printf("popular networks (18):   %.0f - %.0f MMACs\n", zoo_min,
                zoo_max);
    std::printf("generated networks (100): %.0f - %.0f MMACs\n", gen_min,
                gen_max);
    std::printf("paper: generated networks span ~400-800 MMACs; the\n"
                "popular set extends the low end (MobileNetV3-Small is\n"
                "~56 MMACs).\n");
    return 0;
}

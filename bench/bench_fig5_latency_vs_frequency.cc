/**
 * @file
 * Fig. 5 — MobileNetV2 latency vs. big-core frequency across the 105
 * devices, grouped by DRAM capacity. The paper's headline: devices
 * with the SAME frequency and DRAM size still differ by over 2.5x,
 * so simple specs cannot predict latency.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_support.hh"
#include "stats/correlation.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner(
        "Figure 5",
        "MobileNetV2 latency vs frequency, grouped by DRAM size");
    const auto ctx = bench::fullContext();
    const std::size_t v2 = ctx.networkIndex("mobilenet_v2_1.0");

    // Scatter rows: frequency bucket x DRAM size -> latency range.
    struct Bucket
    {
        std::vector<double> lat;
    };
    std::map<std::pair<int, int>, Bucket> buckets; // (freq*10, ram)
    std::vector<double> freqs, lats;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        const auto &dev = ctx.fleet().device(d);
        const double ms = ctx.latencyMs(d, v2);
        freqs.push_back(dev.freq_ghz);
        lats.push_back(ms);
        buckets[{static_cast<int>(dev.freq_ghz * 5.0), // 200 MHz bins
                 static_cast<int>(dev.ram_gb)}]
            .lat.push_back(ms);
    }

    TextTable t({"freq bin (GHz)", "DRAM (GB)", "devices", "min ms",
                 "max ms", "spread"});
    double worst_spread = 0.0;
    for (const auto &[key, b] : buckets) {
        if (b.lat.size() < 2)
            continue;
        const double lo = *std::min_element(b.lat.begin(), b.lat.end());
        const double hi = *std::max_element(b.lat.begin(), b.lat.end());
        const double spread = hi / lo;
        worst_spread = std::max(worst_spread, spread);
        t.addRow({formatDouble(key.first / 5.0, 1) + "-"
                      + formatDouble((key.first + 1) / 5.0, 1),
                  std::to_string(key.second),
                  std::to_string(b.lat.size()), formatDouble(lo, 0),
                  formatDouble(hi, 0), formatDouble(spread, 2) + "x"});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("max latency spread at fixed (frequency, DRAM): %.2fx "
                "(paper: over 2.5x, 120-300 ms at 1.8 GHz / 3 GB)\n",
                worst_spread);
    std::printf("correlation(frequency, latency) = %.3f — the broad "
                "decreasing trend the paper notes\n",
                stats::pearson(freqs, lats));
    return 0;
}

/**
 * @file
 * Fig. 6 — cluster the networks into small / large / giant (each
 * network a 105-dim latency vector), then show that even controlling
 * for BOTH the network cluster and the device cluster, the latency
 * distributions of the device clusters overlap heavily.
 */

#include <algorithm>
#include <cstdio>

#include "bench_support.hh"
#include "stats/descriptive.hh"
#include "stats/kmeans.hh"
#include "util/table.hh"

using namespace gcm;

namespace
{

/** Rank clusters by mean of the member vectors; returns names[i]. */
std::vector<std::string>
rankClusters(const std::vector<std::vector<double>> &vectors,
             const std::vector<std::size_t> &assignments,
             const std::vector<std::string> &names)
{
    std::vector<double> mean(names.size(), 0.0);
    std::vector<std::size_t> count(names.size(), 0);
    for (std::size_t i = 0; i < vectors.size(); ++i) {
        double m = 0.0;
        for (double v : vectors[i])
            m += v;
        mean[assignments[i]] += m / vectors[i].size();
        ++count[assignments[i]];
    }
    std::vector<std::size_t> order(names.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
        mean[i] /= std::max<std::size_t>(count[i], 1);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return mean[a] < mean[b];
    });
    std::vector<std::string> label(names.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank)
        label[order[rank]] = names[rank];
    return label;
}

} // namespace

int
main()
{
    bench::banner("Figure 6",
                  "latency distributions: device clusters x network "
                  "clusters");
    const auto ctx = bench::fullContext();

    // Device clusters (as Fig. 4).
    const auto dev_vecs = ctx.deviceVectors();
    stats::KMeansConfig cfg;
    cfg.k = 3;
    const auto dev_km = stats::kMeans(dev_vecs, cfg);
    const auto dev_label =
        rankClusters(dev_vecs, dev_km.assignments,
                     {"fast", "medium", "slow"});

    // Network clusters: each network is a 105-dim vector.
    const auto net_vecs = ctx.latencyMatrix(bench::allDevices(ctx));
    cfg.seed = 43;
    const auto net_km = stats::kMeans(net_vecs, cfg);
    const auto net_label = rankClusters(
        net_vecs, net_km.assignments, {"small", "large", "giant"});

    // For every (network cluster, device cluster): latency summary.
    TextTable t({"network cluster", "device cluster", "points", "q1 ms",
                 "median ms", "q3 ms"});
    std::vector<std::string> net_names{"small", "large", "giant"};
    std::vector<std::string> dev_names{"fast", "medium", "slow"};
    // Also track overlap: for each network cluster, do the central
    // 50% latency ranges of the device clusters intersect?
    for (const auto &nl : net_names) {
        std::vector<std::pair<double, double>> iqrs;
        for (const auto &dl : dev_names) {
            std::vector<double> lat;
            for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
                if (net_label[net_km.assignments[n]] != nl)
                    continue;
                for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
                    if (dev_label[dev_km.assignments[d]] != dl)
                        continue;
                    lat.push_back(ctx.latencyMs(d, n));
                }
            }
            if (lat.empty())
                continue;
            const auto s = stats::summarize(lat);
            iqrs.emplace_back(s.q1, s.q3);
            t.addRow({nl, dl, std::to_string(lat.size()),
                      formatDouble(s.q1, 1), formatDouble(s.median, 1),
                      formatDouble(s.q3, 1)});
        }
        bool overlap = false;
        for (std::size_t a = 0; a + 1 < iqrs.size(); ++a) {
            if (iqrs[a].second >= iqrs[a + 1].first)
                overlap = true;
        }
        t.addRow({nl, "-> IQRs overlap?", overlap ? "yes" : "no", "",
                  "", ""});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: for every network cluster, the device-cluster "
                "latency distributions overlap, so (device cluster, "
                "network cluster) alone cannot predict latency.\n");
    return 0;
}

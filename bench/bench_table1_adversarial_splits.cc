/**
 * @file
 * Table I — generalizability between hardware clusters: train on two
 * of the {fast, medium, slow} device clusters, test on the third, for
 * signature sets (size 10) chosen by RS / MIS / SCCS.
 */

#include <algorithm>
#include <cstdio>

#include "bench_support.hh"
#include "core/evaluation.hh"
#include "stats/kmeans.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Table I",
                  "adversarial cluster splits: train 2 clusters, test "
                  "the 3rd");
    const auto ctx = bench::fullContext();
    core::EvaluationHarness harness(ctx);

    // Device clusters, ranked fast -> slow as in Fig. 4.
    const auto vectors = ctx.deviceVectors();
    stats::KMeansConfig km_cfg;
    km_cfg.k = 3;
    const auto km = stats::kMeans(vectors, km_cfg);
    std::vector<double> mean(3, 0.0);
    std::vector<std::size_t> count(3, 0);
    for (std::size_t d = 0; d < vectors.size(); ++d) {
        double m = 0.0;
        for (double v : vectors[d])
            m += v;
        mean[km.assignments[d]] += m / vectors[d].size();
        ++count[km.assignments[d]];
    }
    std::vector<std::size_t> order{0, 1, 2};
    for (int c = 0; c < 3; ++c)
        mean[c] /= std::max<std::size_t>(count[c], 1);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return mean[a] < mean[b];
              });
    const char *names[3] = {"fast", "medium", "slow"};

    // Paper Table I values for reference.
    const char *paper[3][3] = {
        {"0.912", "0.964", "0.975"}, // RS
        {"0.916", "0.973", "0.967"}, // MIS
        {"0.949", "0.976", "0.97"},  // SCCS
    };
    const core::SignatureMethod methods[3] = {
        core::SignatureMethod::RandomSampling,
        core::SignatureMethod::MutualInformation,
        core::SignatureMethod::SpearmanCorrelation,
    };

    TextTable t({"method", "test=fast (paper)", "test=medium (paper)",
                 "test=slow (paper)"});
    for (int m = 0; m < 3; ++m) {
        std::vector<std::string> row{
            core::signatureMethodName(methods[m])};
        for (int held_out = 0; held_out < 3; ++held_out) {
            const std::size_t test_cluster =
                order[static_cast<std::size_t>(held_out)];
            core::DeviceSplit split;
            for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
                if (km.assignments[d] == test_cluster)
                    split.test.push_back(d);
                else
                    split.train.push_back(d);
            }
            core::SignatureConfig cfg;
            cfg.size = 10;
            cfg.seed = 7;
            const auto eval =
                harness.evalSignatureModel(split, methods[m], cfg);
            row.push_back(formatDouble(eval.r2, 3) + " ("
                          + paper[m][held_out] + ")");
            std::printf("  %s / test=%s: R^2 = %.3f\n",
                        core::signatureMethodName(methods[m]),
                        names[held_out], eval.r2);
        }
        t.addRow(row);
    }
    std::printf("\n%s\n", t.render().c_str());
    std::printf("shape check (paper): holding out the FAST cluster is\n"
                "hardest — medium/slow devices do not teach the model\n"
                "about flagship microarchitectures — while medium and\n"
                "slow held-out clusters stay above 0.96.\n");
    return 0;
}

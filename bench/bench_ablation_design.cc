/**
 * @file
 * Design ablations called out in DESIGN.md:
 *  (a) anchor normalization: the scale-free signature representation
 *      vs raw milliseconds, on both a random and an adversarial
 *      (slowest-30%-held-out) split — raw-scale boosted trees cannot
 *      extrapolate to unseen device-speed ranges;
 *  (b) MIS estimator: Gaussian log-det vs pairwise histogram MI;
 *  (c) booster capacity around the paper's hyperparameters;
 *  (d) measurement-noise sensitivity: how the static-spec gap and the
 *      signature model degrade as per-session noise grows.
 */

#include <algorithm>
#include <cstdio>

#include "bench_support.hh"
#include "core/cross_validation.hh"
#include "core/evaluation.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Design ablations",
                  "MI estimator / booster capacity / noise sensitivity");
    const auto ctx = bench::fullContext();
    core::EvaluationHarness harness(ctx);
    const auto split = core::splitDevices(ctx.fleet().size(), 0.3, 42);

    // (a) anchor normalization vs raw-millisecond representation.
    {
        core::HarnessOptions raw;
        raw.anchor_normalization = false;
        const core::EvaluationHarness raw_harness(ctx, raw);

        // Adversarial split: hold out the slowest 30% of devices.
        std::vector<std::size_t> by_speed(ctx.fleet().size());
        for (std::size_t i = 0; i < by_speed.size(); ++i)
            by_speed[i] = i;
        const auto vectors = ctx.deviceVectors();
        std::vector<double> mean(vectors.size(), 0.0);
        for (std::size_t d = 0; d < vectors.size(); ++d) {
            for (double v : vectors[d])
                mean[d] += v;
            mean[d] /= static_cast<double>(vectors[d].size());
        }
        std::sort(by_speed.begin(), by_speed.end(),
                  [&](std::size_t a, std::size_t b) {
                      return mean[a] < mean[b];
                  });
        core::DeviceSplit adversarial;
        const std::size_t cut = by_speed.size() * 7 / 10;
        adversarial.train.assign(by_speed.begin(),
                                 by_speed.begin()
                                     + static_cast<std::ptrdiff_t>(cut));
        adversarial.test.assign(by_speed.begin()
                                    + static_cast<std::ptrdiff_t>(cut),
                                by_speed.end());

        core::SignatureConfig cfg;
        cfg.size = 10;
        TextTable t({"representation", "random split R^2",
                     "slowest-30% held out R^2"});
        t.addRow("anchor-normalized (default)",
                 {harness
                      .evalSignatureModel(
                          split,
                          core::SignatureMethod::MutualInformation, cfg)
                      .r2,
                  harness
                      .evalSignatureModel(
                          adversarial,
                          core::SignatureMethod::MutualInformation, cfg)
                      .r2},
                 3);
        t.addRow("raw milliseconds",
                 {raw_harness
                      .evalSignatureModel(
                          split,
                          core::SignatureMethod::MutualInformation, cfg)
                      .r2,
                  raw_harness
                      .evalSignatureModel(
                          adversarial,
                          core::SignatureMethod::MutualInformation, cfg)
                      .r2},
                 3);
        std::printf("%s\n", t.render().c_str());
    }

    // (b) MIS estimator choice.
    {
        TextTable t({"MIS estimator", "R^2"});
        for (auto kind : {core::MiEstimatorKind::Gaussian,
                          core::MiEstimatorKind::Histogram}) {
            core::SignatureConfig cfg;
            cfg.size = 10;
            cfg.mi_estimator = kind;
            const auto eval = harness.evalSignatureModel(
                split, core::SignatureMethod::MutualInformation, cfg);
            t.addRow(kind == core::MiEstimatorKind::Gaussian
                         ? "Gaussian log-det (default)"
                         : "pairwise histogram",
                     {eval.r2});
        }
        std::printf("%s\n", t.render().c_str());
    }

    // (b) booster capacity around the paper's (100 trees, depth 3).
    {
        TextTable t({"n_estimators", "max_depth", "R^2"});
        const std::pair<std::size_t, std::size_t> grid[] = {
            {50, 3}, {100, 2}, {100, 3}, {100, 5}, {200, 3}};
        core::SignatureConfig cfg;
        cfg.size = 10;
        for (const auto &[est, depth] : grid) {
            ml::GbtParams p;
            p.n_estimators = est;
            p.max_depth = depth;
            const auto eval = harness.evalSignatureModel(
                split, core::SignatureMethod::MutualInformation, cfg, p);
            t.addRow({std::to_string(est), std::to_string(depth),
                      formatDouble(eval.r2, 4)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    // (c2) 5-fold cross-validation over devices: a sturdier estimate
    // than the single 70/30 split.
    {
        core::SignatureConfig cfg;
        cfg.size = 10;
        const auto cv = core::crossValidateSignatureModel(
            harness, ctx.fleet().size(), 5,
            core::SignatureMethod::MutualInformation, cfg);
        std::printf("5-fold CV (MIS, size 10): R^2 = %.4f +- %.4f, "
                    "MAPE = %.1f%%\n\n",
                    cv.mean_r2, cv.std_r2, cv.mean_mape_pct);
    }

    // (c) per-session measurement-noise sensitivity: rebuild the
    // dataset at several noise levels and re-run Fig. 8 vs Fig. 9.
    {
        TextTable t({"session noise sigma", "static R^2", "MIS R^2",
                     "gap"});
        for (double sigma : {0.0, 0.04, 0.08, 0.12}) {
            core::ExperimentConfig cfg;
            cfg.campaign.noise.session_jitter_sigma = sigma;
            const auto noisy_ctx = core::ExperimentContext::build(cfg);
            core::EvaluationHarness h2(noisy_ctx);
            const auto split2 =
                core::splitDevices(noisy_ctx.fleet().size(), 0.3, 42);
            const auto stat = h2.evalStaticFeatureModel(split2);
            core::SignatureConfig sel;
            sel.size = 10;
            const auto sig = h2.evalSignatureModel(
                split2, core::SignatureMethod::MutualInformation, sel);
            t.addRow(formatDouble(sigma, 2),
                     {stat.r2, sig.r2, sig.r2 - stat.r2}, 3);
            std::printf("  sigma %.2f done\n", sigma);
        }
        std::printf("\n%s\n", t.render().c_str());
        std::printf("takeaway: the signature representation dominates\n"
                    "static specs at every noise level; noise shaves\n"
                    "accuracy from both but the gap persists.\n");
    }
    return 0;
}

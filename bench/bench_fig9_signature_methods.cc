/**
 * @file
 * Fig. 9 — actual vs. predicted latency for cost models trained with
 * a 10-network signature set chosen by RS / MIS / SCCS. The paper
 * reports R^2 of 0.9125 / 0.944 / 0.943.
 */

#include <cmath>
#include <cstdio>

#include "bench_support.hh"
#include "core/evaluation.hh"
#include "util/table.hh"

using namespace gcm;

int
main()
{
    bench::banner("Figure 9",
                  "signature-set cost models (size 10): RS / MIS / SCCS");
    const auto ctx = bench::fullContext();
    core::EvaluationHarness harness(ctx);
    const auto split = core::splitDevices(ctx.fleet().size(), 0.3, 42);

    TextTable t({"method", "R^2 (paper)", "R^2 (ours)", "RMSE ms",
                 "MAPE %"});
    const struct
    {
        core::SignatureMethod method;
        const char *paper;
    } rows[] = {
        {core::SignatureMethod::RandomSampling, "0.9125"},
        {core::SignatureMethod::MutualInformation, "0.944"},
        {core::SignatureMethod::SpearmanCorrelation, "0.943"},
    };
    for (const auto &row : rows) {
        core::SignatureConfig cfg;
        cfg.size = 10;
        cfg.seed = 7;
        const auto eval =
            harness.evalSignatureModel(split, row.method, cfg);
        t.addRow({core::signatureMethodName(row.method), row.paper,
                  formatDouble(eval.r2, 4), formatDouble(eval.rmse_ms, 1),
                  formatDouble(eval.mape_pct, 1)});
        std::printf("%s signature:", core::signatureMethodName(row.method));
        for (std::size_t s : eval.signature)
            std::printf(" %s", ctx.networkNames()[s].c_str());
        std::printf("\n");
    }
    std::printf("\n%s\n", t.render().c_str());
    std::printf("shape check: all three far above the static-spec model\n"
                "(Figure 8), with MIS/SCCS at least on par with RS.\n");
    return 0;
}

/**
 * @file
 * gcm-verify — static analysis driver for serialized graphs and the
 * built-in network suites.
 *
 *   gcm-verify --file graph.txt          verify + lint one serialized graph
 *   gcm-verify --zoo [--extended]        verify + lint the model zoo
 *   gcm-verify --generated N [--seed S]  verify + lint N generated networks
 *   gcm-verify --quantized               also check int8 deployment graphs
 *   gcm-verify --passes a,b              restrict linting to named passes
 *   gcm-verify --no-lint                 structural verification only
 *   gcm-verify --list-passes             show the registered lint passes
 *
 * Exits 0 when every graph is clean, 1 on any diagnostic or error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "dnn/serialize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"
#include "verify/lint.hh"
#include "verify/verifier.hh"

using namespace gcm;

namespace
{

/** Minimal --key value parser; bare flags get "1". */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int start)
{
    std::map<std::string, std::string> flags;
    for (int i = start; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            fatal("unexpected argument: ", key);
        key = key.substr(2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            flags[key] = argv[++i];
        } else {
            flags[key] = "1";
        }
    }
    return flags;
}

std::string
flagOr(const std::map<std::string, std::string> &flags,
       const std::string &key, const std::string &fallback)
{
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : csv) {
        if (ch == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

struct CheckStats
{
    std::size_t graphs = 0;
    std::size_t clean = 0;
    std::size_t diagnostics = 0;
};

/**
 * Verify (and optionally lint) one graph, printing every diagnostic
 * prefixed with the graph name.
 */
void
checkGraph(const dnn::Graph &graph, bool lint,
           const std::vector<std::string> &passes, CheckStats &stats)
{
    ++stats.graphs;
    verify::VerifyReport report = verify::verifyGraph(graph);
    // Lints index producer ids without bounds checks; only run them
    // on structurally sound graphs.
    if (lint && !report.hasErrors()) {
        auto &registry = verify::LintRegistry::instance();
        report.merge(passes.empty() ? registry.run(graph)
                                    : registry.run(graph, passes));
    }
    if (report.empty()) {
        ++stats.clean;
        return;
    }
    stats.diagnostics += report.size();
    for (const auto &d : report.diagnostics())
        std::printf("%s: %s\n", graph.name().c_str(), d.str().c_str());
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: gcm-verify [--file <path>] [--zoo] [--extended]\n"
        "                  [--generated <count>] [--seed <seed>]\n"
        "                  [--quantized] [--no-lint] [--passes a,b]\n"
        "                  [--list-passes]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const auto flags = parseFlags(argc, argv, 1);
        if (flags.empty()) {
            usage();
            return 1;
        }
        if (flags.count("list-passes")) {
            for (const auto &p :
                 verify::LintRegistry::instance().passes()) {
                std::printf("%-16s %s\n", p.name.c_str(),
                            p.description.c_str());
            }
            return 0;
        }

        const bool lint = flags.count("no-lint") == 0;
        const bool quantized = flags.count("quantized") > 0;
        std::vector<std::string> passes;
        if (const auto it = flags.find("passes"); it != flags.end())
            passes = splitList(it->second);

        std::vector<dnn::Graph> graphs;
        if (const auto it = flags.find("file"); it != flags.end()) {
            std::ifstream is(it->second);
            if (!is)
                fatal("cannot open ", it->second);
            // deserializeGraph hard-errors on structural findings;
            // the catch below turns that into a report + exit 1.
            graphs.push_back(dnn::deserializeGraph(is));
        }
        if (flags.count("zoo")) {
            for (const auto &name : dnn::zooModelNames())
                graphs.push_back(dnn::buildZooModel(name));
            if (flags.count("extended")) {
                for (const auto &name : dnn::extendedZooModelNames())
                    graphs.push_back(dnn::buildZooModel(name));
            }
        }
        if (const auto it = flags.find("generated"); it != flags.end()) {
            int count = 0;
            try {
                std::size_t used = 0;
                count = std::stoi(it->second, &used);
                if (used != it->second.size())
                    count = 0;
            } catch (const std::exception &) {
                count = 0;
            }
            if (count <= 0)
                fatal("--generated needs a positive count, got '",
                      it->second, "'");
            const std::string seed_str = flagOr(flags, "seed", "42");
            std::uint64_t seed = 0;
            try {
                std::size_t used = 0;
                seed = std::stoull(seed_str, &used);
                if (used != seed_str.size())
                    fatal("--seed needs an integer, got '", seed_str, "'");
            } catch (const GcmError &) {
                throw;
            } catch (const std::exception &) {
                fatal("--seed needs an integer, got '", seed_str, "'");
            }
            dnn::RandomNetworkGenerator gen(dnn::SearchSpace{}, seed);
            for (auto &g : gen.generateSuite(
                     static_cast<std::size_t>(count), "gen"))
                graphs.push_back(std::move(g));
        }
        if (graphs.empty()) {
            usage();
            return 1;
        }

        CheckStats stats;
        for (const auto &g : graphs) {
            checkGraph(g, lint, passes, stats);
            if (quantized)
                checkGraph(dnn::quantize(g), lint, passes, stats);
        }
        std::printf("checked %zu graph(s): %zu clean, %zu "
                    "diagnostic(s)\n",
                    stats.graphs, stats.clean, stats.diagnostics);
        return stats.diagnostics == 0 ? 0 : 1;
    } catch (const GcmError &e) {
        std::fprintf(stderr, "gcm-verify: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "gcm-verify: %s\n", e.what());
        usage();
        return 1;
    }
}

/**
 * @file
 * gcm-lint — in-tree invariant analyzer over the repo's own sources.
 *
 *   gcm-lint src tools tests            lint trees (recursively)
 *   gcm-lint src/ml/gbt.cc              lint individual files
 *   gcm-lint --checks a,b <paths...>    run a subset of checks
 *   gcm-lint --json report.json ...     also write a gcm-lint/v1
 *                                       report ('-' for stdout)
 *   gcm-lint --quiet ...                summary line only
 *   gcm-lint --list-checks              show the registered checks
 *
 * Directories named lint_fixtures (deliberately-bad test inputs) and
 * build trees are skipped during traversal. Exit status: 0 when no
 * error-severity finding survived suppression, 1 when at least one
 * did, 2 on usage or I/O errors — so `gcm-lint --json - src tools`
 * is directly scriptable as a CI gate.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint/check.hh"
#include "util/error.hh"

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: gcm-lint [--checks a,b] [--json <file|->]\n"
                 "                [--quiet] [--list-checks] "
                 "<path>...\n");
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : csv) {
        if (ch == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gcm;

    std::vector<std::string> paths;
    std::vector<std::string> checks;
    std::string json_out;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-checks") {
            for (const auto &c :
                 lint::CheckRegistry::instance().checks()) {
                std::printf("%-18s %s\n", c.id.c_str(),
                            c.description.c_str());
            }
            return 0;
        }
        if (arg == "--checks") {
            if (++i >= argc) {
                usage();
                return 2;
            }
            checks = splitList(argv[i]);
        } else if (arg == "--json") {
            if (++i >= argc) {
                usage();
                return 2;
            }
            json_out = argv[i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "gcm-lint: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage();
        return 2;
    }

    try {
        const lint::LintReport report = lint::lintPaths(paths, checks);
        if (!json_out.empty()) {
            const std::string doc = report.json();
            if (json_out == "-") {
                std::printf("%s\n", doc.c_str());
            } else {
                std::ofstream os(json_out, std::ios::binary);
                if (!os)
                    fatal("cannot write ", json_out);
                os << doc << "\n";
            }
        }
        if (quiet) {
            std::printf(
                "gcm-lint: %zu file(s), %zu error(s), %zu "
                "warning(s), %zu suppressed\n",
                report.filesScanned(),
                report.count(lint::Severity::Error),
                report.count(lint::Severity::Warning),
                report.suppressedCount());
        } else {
            std::printf("%s", report.str().c_str());
        }
        return report.hasErrors() ? 1 : 0;
    } catch (const GcmError &e) {
        std::fprintf(stderr, "gcm-lint: %s\n", e.what());
        return 2;
    }
}

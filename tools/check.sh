#!/usr/bin/env bash
#
# Static-analysis CI lane: build everything with warnings-as-errors
# under ASan+UBSan and run the tier-1 test suite. Any warning, test
# failure or sanitizer report fails the script.
#
#   tools/check.sh [extra ctest args...]
#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/check-build"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -S "$ROOT" -B "$BUILD" \
    -DGCM_SANITIZE=address,undefined \
    -DGCM_WERROR=ON
cmake --build "$BUILD" -j "$JOBS"

# Abort on the first sanitizer finding instead of trying to continue.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cd "$BUILD"
ctest --output-on-failure -j "$JOBS" "$@"

echo "check.sh: clean under ASan+UBSan with -Wall -Wextra -Werror"

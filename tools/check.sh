#!/usr/bin/env bash
#
# Static-analysis CI lanes:
#   1. lint: gcm-lint (the in-tree invariant analyzer, DESIGN.md §11)
#      must report zero error-severity findings over the live tree,
#      its fixture tests must each catch their seeded violation, and
#      clang-tidy (when installed) sweeps the directories touched by
#      the current change using the lane's compile database;
#   2. build everything with warnings-as-errors under ASan+UBSan and
#      run the tier-1 test suite;
#   3. rebuild the parallel-path tests under TSan (address and thread
#      sanitizers are mutually exclusive, hence the second build tree)
#      and run them with a worker pool forced on via GCM_THREADS,
#      then soak the serving front end at 2x capacity (open-loop
#      Poisson with operator churn; asserts zero crashes, a positive
#      shed-rate and exact per-tier accounting) and the fleet closed
#      loop (streaming campaign -> retrain -> canary rollback drill
#      with live serving between rounds);
#   4. rebuild with gcov instrumentation, run the observability,
#      serving, search and fleet tests and enforce a 70% line-coverage
#      floor on src/obs, src/serve, src/search and src/fleet.
# Any lint finding, warning, test failure, sanitizer report or
# coverage shortfall fails the script.
#
#   tools/check.sh [extra ctest args...]
#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/check-build"
LINT_BUILD="${ROOT}/check-build-lint"
TSAN_BUILD="${ROOT}/check-build-tsan"
COV_BUILD="${ROOT}/check-build-cov"
JOBS="$(nproc 2>/dev/null || echo 4)"

# --- Lint lane: fastest signal first. A determinism / concurrency /
# error-path violation reintroduced anywhere in the tree fails here
# before the sanitizer builds spend their minutes.
cmake -S "$ROOT" -B "$LINT_BUILD" -DGCM_WERROR=ON
cmake --build "$LINT_BUILD" -j "$JOBS" --target gcm-lint test_lint

# Fixture tests: every check must still catch its seeded violation
# (an analyzer that silently stopped finding anything would otherwise
# make the zero-findings gate below meaningless).
"$LINT_BUILD/tests/test_lint" >/dev/null

# Zero-findings gate over the live tree. --json exits non-zero on any
# error-severity finding, so this line both produces the artifact and
# enforces the gate.
"$LINT_BUILD/tools/gcm-lint" \
    --json "$LINT_BUILD/gcm-lint-report.json" \
    "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" \
    "$ROOT/examples"

echo "check.sh: gcm-lint clean (report: check-build-lint/gcm-lint-report.json)"

# clang-tidy sweep over the directories touched since the previous
# commit, driven by the lint build's compile database. The container
# may not ship clang-tidy; gcm-lint has already enforced the
# project-specific invariants either way.
if command -v clang-tidy >/dev/null 2>&1; then
    CHANGED_DIRS="$(git -C "$ROOT" diff --name-only HEAD~1 -- \
            '*.cc' '*.hh' 2>/dev/null \
        | xargs -r -n1 dirname | sort -u || true)"
    # Fall back to the analyzer's own sources on shallow/initial
    # clones where HEAD~1 does not resolve.
    [ -n "$CHANGED_DIRS" ] || CHANGED_DIRS="src/lint"
    TIDY_FILES=""
    for d in $CHANGED_DIRS; do
        for f in "$ROOT/$d"/*.cc; do
            [ -e "$f" ] && TIDY_FILES="$TIDY_FILES $f"
        done
    done
    if [ -n "$TIDY_FILES" ]; then
        # shellcheck disable=SC2086
        clang-tidy -p "$LINT_BUILD" --quiet $TIDY_FILES
        echo "check.sh: clang-tidy clean on changed dirs:" \
             $CHANGED_DIRS
    fi
else
    echo "check.sh: WARNING clang-tidy not found; skipping the tidy" \
         "sweep (gcm-lint gate already enforced)"
fi

cmake -S "$ROOT" -B "$BUILD" \
    -DGCM_SANITIZE=address,undefined \
    -DGCM_WERROR=ON
cmake --build "$BUILD" -j "$JOBS"

# Abort on the first sanitizer finding instead of trying to continue.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

(
    cd "$BUILD"
    ctest --output-on-failure -j "$JOBS" "$@"
)

echo "check.sh: clean under ASan+UBSan with -Wall -Wextra -Werror"

# --- TSan lane: the tests that exercise the parallel execution layer.
PARALLEL_TESTS=(test_parallel test_tree test_gbt test_baselines
                test_campaign test_cross_validation test_signature
                test_obs test_obs_determinism test_faults test_serve
                test_flat_ensemble test_search test_fleet)

cmake -S "$ROOT" -B "$TSAN_BUILD" \
    -DGCM_SANITIZE=thread \
    -DGCM_WERROR=ON
cmake --build "$TSAN_BUILD" -j "$JOBS" --target "${PARALLEL_TESTS[@]}" \
    soak_serve_overload soak_fleet_loop

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
for t in "${PARALLEL_TESTS[@]}"; do
    # GCM_THREADS=8 forces a real worker pool even on small CI boxes
    # so the races TSan should see actually happen.
    GCM_THREADS=8 "$TSAN_BUILD/tests/$t"
done

# Overload soak: 8 front-end workers race over the shared cache and
# the pinned snapshots at 2x offered load while an operator thread
# rolls back and retires a version. The binary enforces the ladder's
# accounting invariants itself; TSan enforces the absence of races.
GCM_THREADS=8 "$TSAN_BUILD/tests/soak_serve_overload"

# Fleet closed-loop soak: the controller's campaign/retrain/canary
# machinery runs on the worker pool while the front end's worker
# threads serve between rounds; the rollback drill hot-swaps model
# snapshots under that traffic. The binary asserts the canary gate's
# decisions and exact accounting; TSan watches the swaps.
GCM_THREADS=8 "$TSAN_BUILD/tests/soak_fleet_loop"

echo "check.sh: parallel-path tests + overload/fleet soaks clean under TSan (GCM_THREADS=8)"

# --- Coverage lane: gcov-instrumented build of the observability,
# serving, search and fleet tests; src/obs, src/serve, src/search and
# src/fleet must stay above the 70% line-coverage floor. The container
# ships raw gcov (no gcovr/lcov), so per-directory numbers are
# aggregated from `gcov` summary lines directly.
COVERAGE_TESTS=(test_obs test_obs_determinism test_serve test_search
                test_fleet)
COVERAGE_FLOOR=70

if ! command -v gcov >/dev/null 2>&1; then
    echo "check.sh: WARNING gcov not found; skipping the coverage lane"
    exit 0
fi

cmake -S "$ROOT" -B "$COV_BUILD" -DGCM_COVERAGE=ON
cmake --build "$COV_BUILD" -j "$JOBS" --target "${COVERAGE_TESTS[@]}"
for t in "${COVERAGE_TESTS[@]}"; do
    GCM_THREADS=8 "$COV_BUILD/tests/$t" >/dev/null
done

# Aggregate executed/total lines per source directory. gcov prints
# "Lines executed:NN.NN% of M" per file; resolve each report back to
# its source path and bucket by the directory under src/.
report_coverage() {
    find "$COV_BUILD" -name '*.gcda' -path '*src*' | while read -r gcda; do
        local_dir="$(dirname "$gcda")"
        (
            cd "$local_dir"
            gcov -n "$(basename "$gcda")" 2>/dev/null
        ) | awk -v root="$ROOT/src/" -v q="'" '
            /^File / {
                file = $2
                gsub(q, "", file)
                keep = index(file, root) == 1 ? 1 : 0
                if (keep) {
                    rel = substr(file, length(root) + 1)
                    split(rel, parts, "/")
                    dir = parts[1]
                }
            }
            keep && /^Lines executed:/ {
                split($0, a, ":")
                split(a[2], b, "% of ")
                total = b[2] + 0
                executed = total * b[1] / 100.0
                print dir, executed, total
                keep = 0
            }'
    done | awk '
        { exec_lines[$1] += $2; total_lines[$1] += $3 }
        END {
            for (d in total_lines) {
                pct = total_lines[d] > 0 \
                    ? 100.0 * exec_lines[d] / total_lines[d] : 0
                printf "%-10s %6.1f%% of %d lines\n", d, pct, total_lines[d]
            }
        }' | sort
}

echo "check.sh: per-directory line coverage (obs test binaries)"
COVERAGE_TABLE="$(report_coverage)"
echo "$COVERAGE_TABLE"

for dir in obs serve search fleet; do
    DIR_PCT="$(echo "$COVERAGE_TABLE" \
        | awk -v d="$dir" '$1 == d { print int($2) }')"
    if [ -z "$DIR_PCT" ]; then
        echo "check.sh: FAIL no coverage data collected for src/$dir"
        exit 1
    fi
    if [ "$DIR_PCT" -lt "$COVERAGE_FLOOR" ]; then
        echo "check.sh: FAIL src/$dir coverage ${DIR_PCT}% is below" \
             "the ${COVERAGE_FLOOR}% floor"
        exit 1
    fi
    echo "check.sh: src/$dir coverage ${DIR_PCT}%" \
         ">= ${COVERAGE_FLOOR}% floor"
done

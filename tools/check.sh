#!/usr/bin/env bash
#
# Static-analysis CI lanes:
#   1. build everything with warnings-as-errors under ASan+UBSan and
#      run the tier-1 test suite;
#   2. rebuild the parallel-path tests under TSan (address and thread
#      sanitizers are mutually exclusive, hence the second build tree)
#      and run them with a worker pool forced on via GCM_THREADS;
#   3. rebuild with gcov instrumentation, run the observability and
#      serving tests and enforce a 70% line-coverage floor on src/obs
#      and src/serve.
# Any warning, test failure, sanitizer report or coverage shortfall
# fails the script.
#
#   tools/check.sh [extra ctest args...]
#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/check-build"
TSAN_BUILD="${ROOT}/check-build-tsan"
COV_BUILD="${ROOT}/check-build-cov"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -S "$ROOT" -B "$BUILD" \
    -DGCM_SANITIZE=address,undefined \
    -DGCM_WERROR=ON
cmake --build "$BUILD" -j "$JOBS"

# Abort on the first sanitizer finding instead of trying to continue.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

(
    cd "$BUILD"
    ctest --output-on-failure -j "$JOBS" "$@"
)

echo "check.sh: clean under ASan+UBSan with -Wall -Wextra -Werror"

# --- TSan lane: the tests that exercise the parallel execution layer.
PARALLEL_TESTS=(test_parallel test_tree test_gbt test_baselines
                test_campaign test_cross_validation test_signature
                test_obs test_obs_determinism test_faults test_serve)

cmake -S "$ROOT" -B "$TSAN_BUILD" \
    -DGCM_SANITIZE=thread \
    -DGCM_WERROR=ON
cmake --build "$TSAN_BUILD" -j "$JOBS" --target "${PARALLEL_TESTS[@]}"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
for t in "${PARALLEL_TESTS[@]}"; do
    # GCM_THREADS=8 forces a real worker pool even on small CI boxes
    # so the races TSan should see actually happen.
    GCM_THREADS=8 "$TSAN_BUILD/tests/$t"
done

echo "check.sh: parallel-path tests clean under TSan (GCM_THREADS=8)"

# --- Coverage lane: gcov-instrumented build of the observability and
# serving tests; src/obs and src/serve must stay above the 70%
# line-coverage floor. The container ships raw gcov (no gcovr/lcov),
# so per-directory numbers are aggregated from `gcov` summary lines
# directly.
COVERAGE_TESTS=(test_obs test_obs_determinism test_serve)
COVERAGE_FLOOR=70

if ! command -v gcov >/dev/null 2>&1; then
    echo "check.sh: WARNING gcov not found; skipping the coverage lane"
    exit 0
fi

cmake -S "$ROOT" -B "$COV_BUILD" -DGCM_COVERAGE=ON
cmake --build "$COV_BUILD" -j "$JOBS" --target "${COVERAGE_TESTS[@]}"
for t in "${COVERAGE_TESTS[@]}"; do
    GCM_THREADS=8 "$COV_BUILD/tests/$t" >/dev/null
done

# Aggregate executed/total lines per source directory. gcov prints
# "Lines executed:NN.NN% of M" per file; resolve each report back to
# its source path and bucket by the directory under src/.
report_coverage() {
    find "$COV_BUILD" -name '*.gcda' -path '*src*' | while read -r gcda; do
        local_dir="$(dirname "$gcda")"
        (
            cd "$local_dir"
            gcov -n "$(basename "$gcda")" 2>/dev/null
        ) | awk -v root="$ROOT/src/" -v q="'" '
            /^File / {
                file = $2
                gsub(q, "", file)
                keep = index(file, root) == 1 ? 1 : 0
                if (keep) {
                    rel = substr(file, length(root) + 1)
                    split(rel, parts, "/")
                    dir = parts[1]
                }
            }
            keep && /^Lines executed:/ {
                split($0, a, ":")
                split(a[2], b, "% of ")
                total = b[2] + 0
                executed = total * b[1] / 100.0
                print dir, executed, total
                keep = 0
            }'
    done | awk '
        { exec_lines[$1] += $2; total_lines[$1] += $3 }
        END {
            for (d in total_lines) {
                pct = total_lines[d] > 0 \
                    ? 100.0 * exec_lines[d] / total_lines[d] : 0
                printf "%-10s %6.1f%% of %d lines\n", d, pct, total_lines[d]
            }
        }' | sort
}

echo "check.sh: per-directory line coverage (obs test binaries)"
COVERAGE_TABLE="$(report_coverage)"
echo "$COVERAGE_TABLE"

for dir in obs serve; do
    DIR_PCT="$(echo "$COVERAGE_TABLE" \
        | awk -v d="$dir" '$1 == d { print int($2) }')"
    if [ -z "$DIR_PCT" ]; then
        echo "check.sh: FAIL no coverage data collected for src/$dir"
        exit 1
    fi
    if [ "$DIR_PCT" -lt "$COVERAGE_FLOOR" ]; then
        echo "check.sh: FAIL src/$dir coverage ${DIR_PCT}% is below" \
             "the ${COVERAGE_FLOOR}% floor"
        exit 1
    fi
    echo "check.sh: src/$dir coverage ${DIR_PCT}%" \
         ">= ${COVERAGE_FLOOR}% floor"
done

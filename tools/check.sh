#!/usr/bin/env bash
#
# Static-analysis CI lanes:
#   1. build everything with warnings-as-errors under ASan+UBSan and
#      run the tier-1 test suite;
#   2. rebuild the parallel-path tests under TSan (address and thread
#      sanitizers are mutually exclusive, hence the second build tree)
#      and run them with a worker pool forced on via GCM_THREADS.
# Any warning, test failure or sanitizer report fails the script.
#
#   tools/check.sh [extra ctest args...]
#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/check-build"
TSAN_BUILD="${ROOT}/check-build-tsan"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -S "$ROOT" -B "$BUILD" \
    -DGCM_SANITIZE=address,undefined \
    -DGCM_WERROR=ON
cmake --build "$BUILD" -j "$JOBS"

# Abort on the first sanitizer finding instead of trying to continue.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

(
    cd "$BUILD"
    ctest --output-on-failure -j "$JOBS" "$@"
)

echo "check.sh: clean under ASan+UBSan with -Wall -Wextra -Werror"

# --- TSan lane: the tests that exercise the parallel execution layer.
PARALLEL_TESTS=(test_parallel test_tree test_gbt test_baselines
                test_campaign test_cross_validation test_signature)

cmake -S "$ROOT" -B "$TSAN_BUILD" \
    -DGCM_SANITIZE=thread \
    -DGCM_WERROR=ON
cmake --build "$TSAN_BUILD" -j "$JOBS" --target "${PARALLEL_TESTS[@]}"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
for t in "${PARALLEL_TESTS[@]}"; do
    # GCM_THREADS=8 forces a real worker pool even on small CI boxes
    # so the races TSan should see actually happen.
    GCM_THREADS=8 "$TSAN_BUILD/tests/$t"
done

echo "check.sh: parallel-path tests clean under TSan (GCM_THREADS=8)"

/**
 * @file
 * gcm — command-line driver for the cost-model library.
 *
 *   gcm dataset --out repo.csv            export the 118x105 dataset
 *   gcm train --data repo.csv --out m.txt train + serialize a model
 *   gcm predict --model m.txt --network <name> --signature a,b,c,...
 *   gcm profile --network <name> --device <model-name>
 *   gcm list-networks | gcm list-devices
 *
 * The standard suite/fleet are deterministic, so a dataset exported on
 * one machine trains to an identical model anywhere.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "core/experiment_context.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "obs/obs.hh"
#include "sim/profiler.hh"
#include "util/error.hh"
#include "util/parallel.hh"

using namespace gcm;

namespace
{

/** Minimal --key value parser; bare flags get "1". */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int start)
{
    std::map<std::string, std::string> flags;
    for (int i = start; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            fatal("unexpected argument: ", key);
        key = key.substr(2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            flags[key] = argv[++i];
        } else {
            flags[key] = "1";
        }
    }
    return flags;
}

std::string
flagOr(const std::map<std::string, std::string> &flags,
       const std::string &key, const std::string &fallback)
{
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

int
cmdDataset(const std::map<std::string, std::string> &flags)
{
    const std::string out = flagOr(flags, "out", "gcm_dataset.csv");
    const auto ctx = core::ExperimentContext::build();
    std::ofstream os(out);
    if (!os)
        fatal("cannot open ", out, " for writing");
    os << ctx.repo().toCsv();
    std::printf("wrote %zu measurements (%zu networks x %zu devices) "
                "to %s\n",
                ctx.repo().size(), ctx.numNetworks(), ctx.fleet().size(),
                out.c_str());
    return 0;
}

int
cmdTrain(const std::map<std::string, std::string> &flags)
{
    const std::string data = flagOr(flags, "data", "");
    const std::string out = flagOr(flags, "out", "gcm_model.txt");
    const std::string method = flagOr(flags, "method", "mis");
    const std::size_t size =
        static_cast<std::size_t>(std::stoul(flagOr(flags, "size", "10")));

    // Rebuild the deterministic suite and align it with the CSV rows.
    const auto ctx = core::ExperimentContext::build();
    sim::MeasurementRepository repo;
    if (data.empty()) {
        repo = ctx.repo();
        std::printf("no --data given; using the built-in campaign\n");
    } else {
        std::ifstream is(data);
        if (!is)
            fatal("cannot open ", data);
        std::stringstream ss;
        ss << is.rdbuf();
        repo = sim::MeasurementRepository::fromCsv(ss.str());
    }

    // Device ids present in the repository.
    std::vector<std::int32_t> device_ids;
    for (const auto &rec : repo.records()) {
        if (device_ids.empty() || rec.device_id != device_ids.back())
            device_ids.push_back(rec.device_id);
    }
    const auto matrix = repo.latencyMatrix(device_ids,
                                           ctx.networkNames());

    core::SignatureCostModel::Config cfg;
    cfg.selection.size = size;
    if (method == "mis")
        cfg.method = core::SignatureMethod::MutualInformation;
    else if (method == "sccs")
        cfg.method = core::SignatureMethod::SpearmanCorrelation;
    else if (method == "rs")
        cfg.method = core::SignatureMethod::RandomSampling;
    else
        fatal("unknown --method '", method, "' (mis|sccs|rs)");

    const auto model =
        core::SignatureCostModel::train(ctx.suite(), matrix, cfg);
    std::ofstream os(out);
    if (!os)
        fatal("cannot open ", out, " for writing");
    model.serialize(os);
    std::printf("trained on %zu devices; signature:", device_ids.size());
    for (const auto &name : model.signatureNames())
        std::printf(" %s", name.c_str());
    std::printf("\nmodel written to %s\n", out.c_str());
    return 0;
}

int
cmdPredict(const std::map<std::string, std::string> &flags)
{
    const std::string model_path = flagOr(flags, "model", "");
    const std::string network = flagOr(flags, "network", "");
    const std::string signature = flagOr(flags, "signature", "");
    if (model_path.empty() || network.empty() || signature.empty()) {
        fatal("predict needs --model, --network and --signature "
              "(comma-separated latencies in signature order)");
    }
    std::ifstream is(model_path);
    if (!is)
        fatal("cannot open ", model_path);
    const auto model = core::SignatureCostModel::deserialize(is);

    std::vector<double> sig;
    std::stringstream ss(signature);
    std::string item;
    while (std::getline(ss, item, ','))
        sig.push_back(std::stod(item));

    const dnn::Graph net = dnn::quantize(dnn::buildZooModel(network));
    std::printf("%s: predicted %.1f ms\n", network.c_str(),
                model.predictMs(net, sig));
    return 0;
}

int
cmdProfile(const std::map<std::string, std::string> &flags)
{
    const std::string network =
        flagOr(flags, "network", "mobilenet_v2_1.0");
    const std::string device_name = flagOr(flags, "device", "Mi-9");
    const dnn::Graph net = dnn::quantize(dnn::buildZooModel(network));
    const auto fleet = sim::DeviceDatabase::standard();
    const auto &device = fleet.byName(device_name);
    const sim::LatencyModel model;
    const auto profile = sim::profileGraph(model, net, device,
                                           fleet.chipsetOf(device));
    std::printf("%s\n", sim::renderProfile(profile, net).c_str());
    return 0;
}

int
cmdListNetworks()
{
    const auto ctx = core::ExperimentContext::build();
    for (const auto &name : ctx.networkNames())
        std::printf("%s\n", name.c_str());
    return 0;
}

int
cmdListDevices()
{
    const auto fleet = sim::DeviceDatabase::standard();
    for (const auto &d : fleet.devices()) {
        std::printf("%-28s %-16s %-14s %.2f GHz %3.0f GB\n",
                    d.model_name.c_str(),
                    fleet.chipsetOf(d).name.c_str(),
                    fleet.coreOf(d).name.c_str(), d.freq_ghz, d.ram_gb);
    }
    return 0;
}

void
usage()
{
    std::printf(
        "usage: gcm <command> [flags]\n"
        "  dataset  --out FILE                    export dataset CSV\n"
        "  train    [--data FILE] --out FILE      train + save model\n"
        "           [--method mis|sccs|rs] [--size N]\n"
        "  predict  --model FILE --network NAME --signature a,b,...\n"
        "  profile  [--network NAME] [--device NAME]\n"
        "  list-networks | list-devices\n"
        "global flags:\n"
        "  --threads N   worker threads (default: GCM_THREADS env,\n"
        "                else hardware concurrency); results are\n"
        "                bit-identical at any thread count\n"
        "  --trace-out FILE  enable observability and write the\n"
        "                gcm-perf-report/v1 JSON (span tree, pool\n"
        "                counters, latency histograms) after the\n"
        "                command; GCM_OBS=1 enables collection\n"
        "                alone. Outputs stay bit-identical either\n"
        "                way.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        const auto flags = parseFlags(argc, argv, 2);
        const std::string threads = flagOr(flags, "threads", "");
        if (!threads.empty())
            setThreads(static_cast<std::size_t>(std::stoul(threads)));
        const std::string trace_out = flagOr(flags, "trace-out", "");
        if (!trace_out.empty())
            obs::setEnabled(true);

        int rc = 1;
        if (cmd == "dataset")
            rc = cmdDataset(flags);
        else if (cmd == "train")
            rc = cmdTrain(flags);
        else if (cmd == "predict")
            rc = cmdPredict(flags);
        else if (cmd == "profile")
            rc = cmdProfile(flags);
        else if (cmd == "list-networks")
            rc = cmdListNetworks();
        else if (cmd == "list-devices")
            rc = cmdListDevices();
        else
            usage();

        if (!trace_out.empty()) {
            obs::writeReport(trace_out);
            std::fprintf(stderr, "perf report written to %s\n",
                         trace_out.c_str());
        } else if (obs::enabled()) {
            std::fprintf(stderr,
                         "observability on (GCM_OBS); pass "
                         "--trace-out FILE to write the perf "
                         "report\n");
        }
        return rc;
    } catch (const GcmError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

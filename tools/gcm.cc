/**
 * @file
 * gcm — command-line driver for the cost-model library.
 *
 *   gcm dataset --out repo.csv            export the 118x105 dataset
 *   gcm dataset --faults 0.2 ...          same, through a faulted
 *                                         campaign (sparse CSV)
 *   gcm train --data repo.csv --out m.txt train + serialize a model
 *   gcm predict --model m.txt --network <name> --signature a,b,c,...
 *   gcm chaos --rates 0,0.1,0.2,0.3       fault-rate sweep report
 *   gcm profile --network <name> --device <model-name>
 *   gcm serve --model m.txt                gcm-serve/v1 loop on
 *                                          stdin/stdout (or files)
 *   gcm serve --model m.txt --workers 4    multi-worker front end
 *                                          with the degradation ladder
 *   gcm loadgen --model m.txt --mix duplicate|unique
 *   gcm loadgen --model m.txt --arrivals open  overload mode
 *   gcm list-networks | gcm list-devices
 *
 * The standard suite/fleet are deterministic, so a dataset exported on
 * one machine trains to an identical model anywhere.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/chaos.hh"
#include "core/cost_model.hh"
#include "core/experiment_context.hh"
#include "core/imputation.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "fleet/loop.hh"
#include "obs/obs.hh"
#include "search/search.hh"
#include "serve/frontend.hh"
#include "serve/loadgen.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/service.hh"
#include "sim/profiler.hh"
#include "util/error.hh"
#include "util/parallel.hh"

using namespace gcm;

namespace
{

/** Minimal --key value parser; bare flags get "1". */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int start)
{
    std::map<std::string, std::string> flags;
    for (int i = start; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            fatal("unexpected argument: ", key);
        key = key.substr(2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            flags[key] = argv[++i];
        } else {
            flags[key] = "1";
        }
    }
    return flags;
}

std::string
flagOr(const std::map<std::string, std::string> &flags,
       const std::string &key, const std::string &fallback)
{
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

int
cmdDataset(const std::map<std::string, std::string> &flags)
{
    const std::string out = flagOr(flags, "out", "gcm_dataset.csv");
    const double fault_rate =
        std::stod(flagOr(flags, "faults", "0"));
    core::ExperimentConfig cfg;
    cfg.campaign.aggregator =
        sim::parseAggregator(flagOr(flags, "aggregator", "mean"));
    const auto ctx = core::ExperimentContext::build(cfg);

    std::ofstream os(out);
    if (!os)
        fatal("cannot open ", out, " for writing");
    if (fault_rate <= 0.0) {
        os << ctx.repo().toCsv();
        std::printf("wrote %zu measurements (%zu networks x %zu "
                    "devices) to %s\n",
                    ctx.repo().size(), ctx.numNetworks(),
                    ctx.fleet().size(), out.c_str());
        return 0;
    }

    // Re-run the campaign under the fault model; the export is then
    // the sparse repository a real flaky crowd would have produced.
    sim::CampaignConfig cc = cfg.campaign;
    cc.faults = sim::FaultParams::uniformRate(fault_rate);
    cc.fault_seed = static_cast<std::uint64_t>(
        std::stoull(flagOr(flags, "fault-seed", "7021")));
    const sim::CharacterizationCampaign campaign(
        ctx.fleet(), ctx.campaign().model(), cc);
    const sim::CampaignReport report =
        campaign.runResilient(ctx.suite());
    os << report.repo.toCsv();
    std::printf("wrote %zu of %zu cells to %s (fault rate %.2f)\n",
                report.repo.size(), report.expected_cells, out.c_str(),
                fault_rate);
    std::printf("  sessions %llu (ok %llu, retries %llu), crashes "
                "%llu, stragglers %llu, corrupt %llu, duplicates "
                "%llu\n",
                (unsigned long long)report.stats.sessions_attempted,
                (unsigned long long)report.stats.sessions_ok,
                (unsigned long long)report.stats.retries,
                (unsigned long long)report.stats.crashes,
                (unsigned long long)report.stats.stragglers,
                (unsigned long long)report.stats.corrupt_rejected,
                (unsigned long long)report.stats.duplicates);
    std::printf("  dropped cells %llu, quarantined devices %zu, "
                "dropouts %zu, simulated %.1f s\n",
                (unsigned long long)report.stats.dropped_cells,
                report.quarantined.size(), report.dropouts.size(),
                report.stats.simulated_ms / 1000.0);
    return 0;
}

int
cmdTrain(const std::map<std::string, std::string> &flags)
{
    const std::string data = flagOr(flags, "data", "");
    const std::string out = flagOr(flags, "out", "gcm_model.txt");
    const std::string method = flagOr(flags, "method", "mis");
    const std::size_t size =
        static_cast<std::size_t>(std::stoul(flagOr(flags, "size", "10")));

    // Rebuild the deterministic suite and align it with the CSV rows.
    const auto ctx = core::ExperimentContext::build();
    sim::MeasurementRepository repo;
    if (data.empty()) {
        repo = ctx.repo();
        std::printf("no --data given; using the built-in campaign\n");
    } else {
        std::ifstream is(data);
        if (!is)
            fatal("cannot open ", data);
        std::stringstream ss;
        ss << is.rdbuf();
        repo = sim::MeasurementRepository::fromCsv(ss.str());
    }

    // Device ids present in the repository.
    std::vector<std::int32_t> device_ids;
    for (const auto &rec : repo.records()) {
        if (device_ids.empty() || rec.device_id != device_ids.back())
            device_ids.push_back(rec.device_id);
    }

    // A repository from a faulted campaign is sparse; impute the
    // missing cells so training still goes through.
    auto matrix = repo.sparseLatencyMatrix(device_ids,
                                           ctx.networkNames());
    const std::size_t missing =
        repo.missingCells(device_ids, ctx.networkNames());
    if (missing > 0) {
        const auto st = core::imputeLatencyMatrix(matrix);
        std::printf("sparse repository: imputed %zu of %zu cells "
                    "(%zu nearest-neighbour, %zu fleet-median)\n",
                    st.missing_cells, st.total_cells, st.nn_imputed,
                    st.median_imputed);
    }

    core::SignatureCostModel::Config cfg;
    cfg.selection.size = size;
    if (method == "mis")
        cfg.method = core::SignatureMethod::MutualInformation;
    else if (method == "sccs")
        cfg.method = core::SignatureMethod::SpearmanCorrelation;
    else if (method == "rs")
        cfg.method = core::SignatureMethod::RandomSampling;
    else
        fatal("unknown --method '", method, "' (mis|sccs|rs)");

    const auto model =
        core::SignatureCostModel::train(ctx.suite(), matrix, cfg);
    std::ofstream os(out);
    if (!os)
        fatal("cannot open ", out, " for writing");
    model.serialize(os);
    std::printf("trained on %zu devices; signature:", device_ids.size());
    for (const auto &name : model.signatureNames())
        std::printf(" %s", name.c_str());
    std::printf("\nmodel written to %s\n", out.c_str());
    return 0;
}

int
cmdPredict(const std::map<std::string, std::string> &flags)
{
    const std::string model_path = flagOr(flags, "model", "");
    const std::string network = flagOr(flags, "network", "");
    const std::string signature = flagOr(flags, "signature", "");
    if (model_path.empty() || network.empty() || signature.empty()) {
        fatal("predict needs --model, --network and --signature "
              "(comma-separated latencies in signature order)");
    }
    std::ifstream is(model_path);
    if (!is)
        fatal("cannot open ", model_path);
    const auto model = core::SignatureCostModel::deserialize(is);

    std::vector<double> sig;
    std::stringstream ss(signature);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty() || item == "nan" || item == "NaN") {
            sig.push_back(std::numeric_limits<double>::quiet_NaN());
        } else {
            sig.push_back(std::stod(item));
        }
    }

    bool imputed_any = false;
    for (double v : sig)
        imputed_any = imputed_any || std::isnan(v);
    if (imputed_any) {
        if (flags.count("impute") == 0) {
            fatal("signature has missing (nan) entries; pass "
                  "--impute to fill them from the reference fleet");
        }
        // Reference matrix: the signature networks' clean latencies
        // across the standard fleet.
        const auto ctx = core::ExperimentContext::build();
        std::vector<std::vector<double>> reference(
            model.signatureNames().size(),
            std::vector<double>(ctx.fleet().size()));
        for (std::size_t k = 0; k < model.signatureNames().size();
             ++k) {
            const std::size_t n =
                ctx.networkIndex(model.signatureNames()[k]);
            for (std::size_t d = 0; d < ctx.fleet().size(); ++d)
                reference[k][d] = ctx.latencyMs(d, n);
        }
        const std::size_t filled =
            core::imputeSignatureLatencies(sig, reference);
        std::printf("imputed %zu missing signature entries\n", filled);
    }

    const dnn::Graph net = dnn::quantize(dnn::buildZooModel(network));
    std::printf("%s: predicted %.1f ms\n", network.c_str(),
                model.predictMs(net, sig));
    return 0;
}

int
cmdChaos(const std::map<std::string, std::string> &flags)
{
    core::ChaosSweepConfig cfg;
    // Reduced scale by default: the sweep re-runs the campaign and
    // trains a model per fault rate.
    cfg.experiment.num_random_networks = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "networks", "12")));
    cfg.experiment.num_devices = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "devices", "24")));
    cfg.experiment.campaign.runs_per_network =
        static_cast<std::size_t>(
            std::stoul(flagOr(flags, "runs", "5")));
    cfg.experiment.campaign.aggregator =
        sim::parseAggregator(flagOr(flags, "aggregator", "mean"));
    cfg.fault_seed = static_cast<std::uint64_t>(
        std::stoull(flagOr(flags, "fault-seed", "7021")));
    cfg.gbt.n_estimators = 40;

    const std::string rates = flagOr(flags, "rates", "0,0.1,0.2,0.3");
    cfg.fault_rates.clear();
    std::stringstream ss(rates);
    std::string item;
    while (std::getline(ss, item, ','))
        cfg.fault_rates.push_back(std::stod(item));
    if (cfg.fault_rates.empty())
        fatal("chaos: --rates parsed to nothing");

    const auto points = core::runChaosSweep(cfg);
    std::printf("%6s %9s %8s %8s %6s %8s %8s %7s %7s\n", "rate",
                "sessions", "retries", "crashes", "drops", "missing",
                "imputed", "quar", "R2");
    for (const auto &pt : points) {
        std::printf("%6.2f %9llu %8llu %8llu %6llu %8zu %8zu %7zu "
                    "%7.4f\n",
                    pt.fault_rate,
                    (unsigned long long)pt.stats.sessions_attempted,
                    (unsigned long long)pt.stats.retries,
                    (unsigned long long)pt.stats.crashes,
                    (unsigned long long)pt.stats.dropped_cells,
                    pt.missing_cells, pt.imputation.missing_cells,
                    pt.quarantined_devices, pt.r2_clean_holdout);
    }

    const std::string out = flagOr(flags, "out", "");
    if (!out.empty()) {
        std::ofstream os(out);
        if (!os)
            fatal("cannot open ", out, " for writing");
        os << "fault_rate,sessions,retries,crashes,dropped_cells,"
              "missing_cells,imputed_cells,quarantined,r2\n";
        for (const auto &pt : points) {
            os << pt.fault_rate << ','
               << pt.stats.sessions_attempted << ','
               << pt.stats.retries << ',' << pt.stats.crashes << ','
               << pt.stats.dropped_cells << ',' << pt.missing_cells
               << ',' << pt.imputation.missing_cells << ','
               << pt.quarantined_devices << ','
               << pt.r2_clean_holdout << '\n';
        }
        std::printf("sweep written to %s\n", out.c_str());
    }
    return 0;
}

int
cmdProfile(const std::map<std::string, std::string> &flags)
{
    const std::string network =
        flagOr(flags, "network", "mobilenet_v2_1.0");
    const std::string device_name = flagOr(flags, "device", "Mi-9");
    const dnn::Graph net = dnn::quantize(dnn::buildZooModel(network));
    const auto fleet = sim::DeviceDatabase::standard();
    const auto &device = fleet.byName(device_name);
    const sim::LatencyModel model;
    const auto profile = sim::profileGraph(model, net, device,
                                           fleet.chipsetOf(device));
    std::printf("%s\n", sim::renderProfile(profile, net).c_str());
    return 0;
}

/**
 * Load --model into a registry and fail early unless it is a
 * servable gcm-cost-model v1 snapshot.
 */
void
publishModelOrDie(const std::map<std::string, std::string> &flags,
                  serve::ModelRegistry &registry)
{
    const std::string model_path = flagOr(flags, "model", "");
    if (model_path.empty())
        fatal("--model FILE is required (train one with 'gcm train')");
    std::ifstream is(model_path);
    if (!is)
        fatal("cannot open ", model_path);
    registry.publish(serve::ModelSnapshot::fromStream(is));
    const auto active = registry.active();
    if (active.snapshot->kind() != serve::SnapshotKind::CostModel) {
        fatal("--model must be a gcm-cost-model v1 file; '", model_path,
              "' holds a bare ",
              serve::snapshotKindName(active.snapshot->kind()),
              " regressor");
    }
}

/**
 * Device table for the standard fleet: each device's latencies on
 * the model's signature networks, from the clean reference campaign.
 */
serve::PredictionService::DeviceTable
buildDeviceTable(const core::SignatureCostModel &model)
{
    const auto ctx = core::ExperimentContext::build();
    serve::PredictionService::DeviceTable table;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        std::vector<double> sig;
        sig.reserve(model.signatureNames().size());
        for (const auto &name : model.signatureNames())
            sig.push_back(ctx.latencyMs(d, ctx.networkIndex(name)));
        table[ctx.fleet().devices()[d].model_name] = std::move(sig);
    }
    return table;
}

serve::ServiceConfig
serviceConfigFromFlags(const std::map<std::string, std::string> &flags)
{
    serve::ServiceConfig cfg;
    cfg.cache_capacity = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "cache", "4096")));
    cfg.cache_shards = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "shards", "8")));
    return cfg;
}

serve::LoopConfig
loopConfigFromFlags(const std::map<std::string, std::string> &flags)
{
    serve::LoopConfig cfg;
    cfg.batch_size = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "batch", "32")));
    cfg.queue_capacity = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "queue", "256")));
    return cfg;
}

serve::FrontEndConfig
frontEndConfigFromFlags(const std::map<std::string, std::string> &flags)
{
    serve::FrontEndConfig cfg;
    cfg.workers = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "workers", "0")));
    cfg.degrade =
        serve::parseDegradeMode(flagOr(flags, "degrade", "ladder"));
    cfg.batch_size = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "batch", "16")));
    cfg.queue_capacity = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "queue", "256")));
    cfg.soft_watermark = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "soft", "64")));
    cfg.hard_watermark = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "hard", "160")));
    cfg.service = serviceConfigFromFlags(flags);
    return cfg;
}

int
cmdServe(const std::map<std::string, std::string> &flags)
{
    serve::ModelRegistry registry;
    publishModelOrDie(flags, registry);
    const auto active = registry.active();

    const std::string in_path = flagOr(flags, "in", "");
    const std::string out_path = flagOr(flags, "out", "");
    std::ifstream fin;
    std::ofstream fout;
    std::istream *in = &std::cin;
    std::ostream *out = &std::cout;
    if (!in_path.empty()) {
        fin.open(in_path);
        if (!fin)
            fatal("cannot open ", in_path);
        in = &fin;
    }
    if (!out_path.empty()) {
        fout.open(out_path);
        if (!fout)
            fatal("cannot open ", out_path, " for writing");
        out = &fout;
    }

    // --workers (or --degrade / --arrival-qps) selects the
    // multi-worker front end with the degradation ladder; without
    // them the original single-threaded micro-batching loop runs.
    const bool use_frontend = flags.count("workers") != 0
                              || flags.count("degrade") != 0
                              || flags.count("arrival-qps") != 0;
    if (use_frontend) {
        serve::ServerFrontEnd frontend(
            registry, buildDeviceTable(active.snapshot->costModel()),
            frontEndConfigFromFlags(flags));
        const double arrival_qps =
            std::stod(flagOr(flags, "arrival-qps", "0"));
        const std::size_t consumed =
            serve::runFrontEndLoop(frontend, *in, *out, arrival_qps);
        const auto st = frontend.cache().stats();
        std::fprintf(stderr,
                     "served %zu requests on %zu worker(s) "
                     "(model version %llu, degrade %s)\n"
                     "cache: %llu hits, %llu misses, %llu evictions, "
                     "%llu coalesced (hit rate %.1f%%)\n",
                     consumed, frontend.workers(),
                     (unsigned long long)active.version,
                     serve::degradeModeName(
                         frontend.config().degrade),
                     (unsigned long long)st.hits,
                     (unsigned long long)st.misses,
                     (unsigned long long)st.evictions,
                     (unsigned long long)st.coalesced,
                     st.hitRate() * 100.0);
        return 0;
    }

    serve::PredictionService service(
        registry, buildDeviceTable(active.snapshot->costModel()),
        serviceConfigFromFlags(flags));
    const std::size_t consumed =
        serve::runServeLoop(service, *in, *out, loopConfigFromFlags(flags));
    const auto st = service.cache().stats();
    std::fprintf(stderr,
                 "served %zu requests (model version %llu)\n"
                 "cache: %llu hits, %llu misses, %llu evictions, "
                 "%llu coalesced (hit rate %.1f%%, effective %.1f%%)\n",
                 consumed, (unsigned long long)active.version,
                 (unsigned long long)st.hits,
                 (unsigned long long)st.misses,
                 (unsigned long long)st.evictions,
                 (unsigned long long)st.coalesced, st.hitRate() * 100.0,
                 st.effectiveHitRate() * 100.0);
    return 0;
}

int
cmdLoadgen(const std::map<std::string, std::string> &flags)
{
    serve::ModelRegistry registry;
    publishModelOrDie(flags, registry);
    const auto active = registry.active();

    serve::LoadGenConfig cfg;
    cfg.requests = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "requests", "2000")));
    cfg.burst = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "burst", "32")));
    cfg.target_qps = std::stod(flagOr(flags, "qps", "0"));
    cfg.seed = static_cast<std::uint64_t>(
        std::stoull(flagOr(flags, "seed", "42")));
    cfg.mix = serve::parseLoadMix(flagOr(flags, "mix", "duplicate"));
    cfg.pool_size = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "pool", "16")));
    cfg.loop = loopConfigFromFlags(flags);

    const std::string out_path = flagOr(flags, "out", "");
    std::ofstream fout;
    if (!out_path.empty()) {
        fout.open(out_path);
        if (!fout)
            fatal("cannot open ", out_path, " for writing");
    }

    const std::string arrivals = flagOr(flags, "arrivals", "closed");
    if (arrivals == "open") {
        // Open-loop overload mode against the multi-worker front
        // end: Poisson arrivals on the simulated clock at
        // --offered-qps (default 2x the front end's capacity).
        serve::ServerFrontEnd frontend(
            registry, buildDeviceTable(active.snapshot->costModel()),
            frontEndConfigFromFlags(flags));
        cfg.bulk_fraction =
            std::stod(flagOr(flags, "bulk-fraction", "0"));
        const std::string offered = flagOr(flags, "offered-qps", "");
        cfg.offered_qps = offered.empty()
                              ? 2.0 * frontend.capacityQps()
                              : std::stod(offered);
        const serve::OpenLoadReport report = serve::runOpenLoadGen(
            frontend, cfg, out_path.empty() ? nullptr : &fout);
        std::printf("%s\n", report.summary().c_str());
        if (!out_path.empty())
            std::printf("responses written to %s\n", out_path.c_str());
        return 0;
    }
    if (arrivals != "closed")
        fatal("--arrivals must be 'closed' or 'open'");

    serve::PredictionService service(
        registry, buildDeviceTable(active.snapshot->costModel()),
        serviceConfigFromFlags(flags));
    const serve::LoadGenReport report = serve::runLoadGen(
        service, cfg, out_path.empty() ? nullptr : &fout);
    std::printf("%s\n", report.summary().c_str());
    if (!out_path.empty())
        std::printf("responses written to %s\n", out_path.c_str());
    return 0;
}

int
cmdSearch(const std::map<std::string, std::string> &flags)
{
    serve::ModelRegistry registry;
    publishModelOrDie(flags, registry);
    serve::PredictionService service(
        registry,
        buildDeviceTable(registry.active().snapshot->costModel()),
        serviceConfigFromFlags(flags));

    search::SearchConfig cfg;
    cfg.budget_ms = std::stod(flagOr(flags, "budget-ms", "0"));
    const std::string devices =
        flagOr(flags, "devices", flagOr(flags, "device", ""));
    if (devices.empty())
        fatal("--device NAME (or --devices a,b,...) is required");
    std::stringstream ss(devices);
    std::string item;
    while (std::getline(ss, item, ','))
        cfg.devices.push_back(item);
    cfg.seed = static_cast<std::uint64_t>(
        std::stoull(flagOr(flags, "seed", "1")));
    cfg.population = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "population", "32")));
    cfg.generations = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "generations", "8")));
    cfg.elite = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "elite", "4")));

    search::ArchitectureSearch engine(service, cfg);
    const search::SearchResult result = engine.run();
    const std::string report = search::renderSearchReport(cfg, result);

    const std::string out_path = flagOr(flags, "out", "");
    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        std::ofstream fout(out_path);
        if (!fout)
            fatal("cannot open ", out_path, " for writing");
        fout << report;
        std::printf("gcm-search/v1 report written to %s\n",
                    out_path.c_str());
    }
    std::fprintf(stderr,
                 "search: %llu candidates evaluated, %llu rejected, "
                 "front size %zu, cache effective hit rate %.3f\n",
                 static_cast<unsigned long long>(
                     result.candidates_evaluated),
                 static_cast<unsigned long long>(
                     result.candidates_rejected),
                 result.front.size(), result.cache.effectiveHitRate());
    return 0;
}

int
cmdFleet(const std::map<std::string, std::string> &flags)
{
    fleet::FleetLoopConfig cfg;
    cfg.fleet.fleet_size = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "fleet-size", "10000")));
    cfg.fleet.seed = static_cast<std::uint64_t>(
        std::stoull(flagOr(flags, "fleet-seed", "9000")));
    cfg.rounds = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "rounds", "6")));
    cfg.devices_per_round = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "cohort", "24")));
    cfg.fault_rate = std::stod(flagOr(flags, "faults", "0.1"));
    cfg.num_random_networks = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "networks", "8")));
    cfg.campaign.runs_per_network = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "runs", "5")));
    cfg.retrain.cadence_rounds = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "cadence", "2")));
    cfg.retrain.gbt.n_estimators = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "estimators", "60")));
    cfg.canary.holdout_fraction =
        std::stod(flagOr(flags, "holdout", "0.2"));
    cfg.canary.max_r2_regression =
        std::stod(flagOr(flags, "max-regression", "0.01"));
    cfg.traffic.requests_per_round = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "requests", "64")));
    cfg.traffic.workers = static_cast<std::size_t>(
        std::stoul(flagOr(flags, "workers", "2")));
    // Injected-regression drill: corrupt these retrain ordinals so
    // the canary gate's rollback path can be demonstrated on demand.
    const std::string sabotage = flagOr(flags, "sabotage", "");
    if (!sabotage.empty()) {
        std::stringstream ss(sabotage);
        std::string item;
        while (std::getline(ss, item, ','))
            cfg.sabotage_retrains.push_back(
                static_cast<std::size_t>(std::stoul(item)));
    }

    std::string report;
    const fleet::FleetResult result =
        fleet::runFleetLoop(cfg, &report);

    const std::string out_path = flagOr(flags, "out", "");
    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        std::ofstream fout(out_path);
        if (!fout)
            fatal("cannot open ", out_path, " for writing");
        fout << report;
        std::printf("gcm-fleet/v1 report written to %s\n",
                    out_path.c_str());
    }
    std::fprintf(
        stderr,
        "fleet: %zu rounds, %zu publishes, %zu rollbacks, %zu "
        "skipped; active v%llu; repo %zu records (%zu devices "
        "quarantined); served %zu (shed %zu)\n",
        result.rounds.size(), result.publishes, result.rollbacks,
        result.skipped,
        static_cast<unsigned long long>(result.final_version),
        result.repo_size, result.quarantined_devices,
        result.served_total, result.shed_total);
    return 0;
}

int
cmdListNetworks()
{
    const auto ctx = core::ExperimentContext::build();
    for (const auto &name : ctx.networkNames())
        std::printf("%s\n", name.c_str());
    return 0;
}

int
cmdListDevices()
{
    const auto fleet = sim::DeviceDatabase::standard();
    for (const auto &d : fleet.devices()) {
        std::printf("%-28s %-16s %-14s %.2f GHz %3.0f GB\n",
                    d.model_name.c_str(),
                    fleet.chipsetOf(d).name.c_str(),
                    fleet.coreOf(d).name.c_str(), d.freq_ghz, d.ram_gb);
    }
    return 0;
}

void
usage()
{
    std::printf(
        "usage: gcm <command> [flags]\n"
        "  dataset  --out FILE                    export dataset CSV\n"
        "           [--faults RATE] [--fault-seed N]  run the campaign\n"
        "                under a fault model; the CSV is then sparse\n"
        "           [--aggregator mean|median|trimmed|mad]\n"
        "  train    [--data FILE] --out FILE      train + save model\n"
        "           [--method mis|sccs|rs] [--size N]\n"
        "           sparse CSVs are imputed automatically\n"
        "  predict  --model FILE --network NAME --signature a,b,...\n"
        "           [--impute]   allow nan entries in --signature,\n"
        "                filled from the reference fleet\n"
        "  chaos    [--rates r1,r2,...] [--devices N] [--networks N]\n"
        "           [--runs N] [--fault-seed N] [--out FILE]\n"
        "                fault-rate sweep: campaign recovery counters\n"
        "                and clean-holdout R^2 per rate\n"
        "  profile  [--network NAME] [--device NAME]\n"
        "  serve    --model FILE                  gcm-serve/v1 loop:\n"
        "           one JSON request per line on stdin, one JSON\n"
        "           response per line on stdout (see DESIGN.md §10)\n"
        "           [--in FILE] [--out FILE]      file mode\n"
        "           [--batch N] [--queue N]       micro-batch size and\n"
        "                admission-queue capacity (default 32/256)\n"
        "           [--cache N] [--shards N]      prediction cache\n"
        "                capacity and shard count (default 4096/8)\n"
        "           [--workers N] [--degrade ladder|shed]\n"
        "                multi-worker front end with the graceful-\n"
        "                degradation ladder (DESIGN.md §14); per-\n"
        "                priority bounded queues, responses tagged\n"
        "                with the producing tier\n"
        "           [--soft N] [--hard N]  ladder watermarks\n"
        "           [--arrival-qps X]      simulated arrival pacing\n"
        "  loadgen  --model FILE                  seeded closed-loop\n"
        "           load generator over the serve loop\n"
        "           [--requests N] [--burst N] [--qps X] [--seed N]\n"
        "           [--mix duplicate|unique] [--pool N]\n"
        "           [--batch N] [--queue N] [--cache N] [--shards N]\n"
        "           [--out FILE]  write the response stream (byte-\n"
        "                identical across runs and thread counts)\n"
        "           [--arrivals open] [--offered-qps X]\n"
        "                open-loop Poisson overload mode against the\n"
        "                multi-worker front end (default offered load\n"
        "                2x capacity); reports goodput, shed-rate and\n"
        "                per-tier fractions on the simulated clock\n"
        "           [--bulk-fraction X] [--workers N]\n"
        "           [--degrade ladder|shed] [--soft N] [--hard N]\n"
        "  search   --model FILE --budget-ms X    latency-constrained\n"
        "           --device NAME | --devices a,b,...  architecture\n"
        "                search over the generator space; emits the\n"
        "                gcm-search/v1 Pareto front (DESIGN.md §13),\n"
        "                byte-identical at any --threads\n"
        "           [--seed N] [--population N] [--generations N]\n"
        "           [--elite N] [--cache N] [--shards N] [--out FILE]\n"
        "  fleet    closed loop: streaming campaign -> incremental\n"
        "           retrain -> canaried hot-swap over a synthesized\n"
        "           fleet, on the simulated clock (DESIGN.md §15);\n"
        "           emits the gcm-fleet/v1 report, byte-identical\n"
        "           at any --threads\n"
        "           [--fleet-size N] [--fleet-seed N] [--rounds N]\n"
        "           [--cohort N]     devices measured per round\n"
        "           [--faults RATE] [--networks N] [--runs N]\n"
        "           [--cadence N]    rounds between retrains\n"
        "           [--estimators N] [--holdout X]\n"
        "           [--max-regression X]  canary R^2 tolerance\n"
        "           [--requests N] [--workers N] [--out FILE]\n"
        "           [--sabotage i,j,...]  corrupt these retrain\n"
        "                ordinals (canary rollback drill)\n"
        "  list-networks | list-devices\n"
        "global flags:\n"
        "  --threads N   worker threads (default: GCM_THREADS env,\n"
        "                else hardware concurrency); results are\n"
        "                bit-identical at any thread count\n"
        "  --trace-out FILE  enable observability and write the\n"
        "                gcm-perf-report/v1 JSON (span tree, pool\n"
        "                counters, latency histograms) after the\n"
        "                command; GCM_OBS=1 enables collection\n"
        "                alone. Outputs stay bit-identical either\n"
        "                way.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        const auto flags = parseFlags(argc, argv, 2);
        const std::string threads = flagOr(flags, "threads", "");
        if (!threads.empty())
            setThreads(static_cast<std::size_t>(std::stoul(threads)));
        const std::string trace_out = flagOr(flags, "trace-out", "");
        if (!trace_out.empty())
            obs::setEnabled(true);

        int rc = 1;
        if (cmd == "dataset")
            rc = cmdDataset(flags);
        else if (cmd == "train")
            rc = cmdTrain(flags);
        else if (cmd == "predict")
            rc = cmdPredict(flags);
        else if (cmd == "chaos")
            rc = cmdChaos(flags);
        else if (cmd == "profile")
            rc = cmdProfile(flags);
        else if (cmd == "serve")
            rc = cmdServe(flags);
        else if (cmd == "loadgen")
            rc = cmdLoadgen(flags);
        else if (cmd == "search")
            rc = cmdSearch(flags);
        else if (cmd == "fleet")
            rc = cmdFleet(flags);
        else if (cmd == "list-networks")
            rc = cmdListNetworks();
        else if (cmd == "list-devices")
            rc = cmdListDevices();
        else
            usage();

        if (!trace_out.empty()) {
            obs::writeReport(trace_out);
            std::fprintf(stderr, "perf report written to %s\n",
                         trace_out.c_str());
        } else if (obs::enabled()) {
            std::fprintf(stderr,
                         "observability on (GCM_OBS); pass "
                         "--trace-out FILE to write the perf "
                         "report\n");
        }
        return rc;
    } catch (const GcmError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
